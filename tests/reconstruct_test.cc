// Tests for the reconstruction layer: interval partitions, apportionment,
// order-statistics assignment, and the Bayes/EM reconstructor — including
// the EM signature property (monotone log-likelihood) and the paper's
// headline property that reconstruction recovers the original distribution
// far better than the raw perturbed histogram does.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "engine/simd.h"
#include "engine/thread_pool.h"
#include "perturb/noise_model.h"
#include "reconstruct/assign.h"
#include "reconstruct/by_class.h"
#include "reconstruct/partition.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"
#include "stats/histogram.h"
#include "synth/generator.h"

namespace ppdm::reconstruct {
namespace {

using perturb::NoiseKind;
using perturb::NoiseModel;

// -------------------------------------------------------------- Partition

TEST(PartitionTest, EdgesAndMidpoints) {
  const Partition p(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(p.width(), 2.0);
  EXPECT_DOUBLE_EQ(p.Lo(0), 0.0);
  EXPECT_DOUBLE_EQ(p.Hi(4), 10.0);
  EXPECT_DOUBLE_EQ(p.Mid(2), 5.0);
  const std::vector<double> edges = p.Edges();
  ASSERT_EQ(edges.size(), 6u);
  EXPECT_DOUBLE_EQ(edges.front(), 0.0);
  EXPECT_DOUBLE_EQ(edges.back(), 10.0);
}

TEST(PartitionTest, IntervalOfClampsAndBins) {
  const Partition p(0.0, 10.0, 5);
  EXPECT_EQ(p.IntervalOf(-1.0), 0u);
  EXPECT_EQ(p.IntervalOf(0.0), 0u);
  EXPECT_EQ(p.IntervalOf(1.99), 0u);
  EXPECT_EQ(p.IntervalOf(2.0), 1u);
  EXPECT_EQ(p.IntervalOf(9.99), 4u);
  EXPECT_EQ(p.IntervalOf(10.0), 4u);
  EXPECT_EQ(p.IntervalOf(25.0), 4u);
}

TEST(PartitionTest, ForFieldUsesDomain) {
  const data::FieldSpec field{"age", data::AttributeKind::kContinuous, 20.0,
                              80.0};
  const Partition p = Partition::ForField(field, 30);
  EXPECT_DOUBLE_EQ(p.lo(), 20.0);
  EXPECT_DOUBLE_EQ(p.hi(), 80.0);
  EXPECT_DOUBLE_EQ(p.width(), 2.0);
}

// ----------------------------------------------------------- Apportionment

TEST(ApportionTest, SumsExactlyToTotal) {
  const auto counts = ApportionCounts({0.3, 0.3, 0.4}, 10);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 10u);
  EXPECT_EQ(counts[2], 4u);
}

TEST(ApportionTest, HandlesRemainders) {
  // 1/3 each of 10: two intervals get 3, one gets 4; total exactly 10.
  const auto counts =
      ApportionCounts({1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0}, 10);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 10u);
  for (std::size_t c : counts) {
    EXPECT_GE(c, 3u);
    EXPECT_LE(c, 4u);
  }
}

TEST(ApportionTest, ZeroTotal) {
  const auto counts = ApportionCounts({0.5, 0.5}, 0);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
}

TEST(ApportionTest, MassesNeedNotBeNormalized) {
  // Masses are normalized internally, so 3:1 of 100 is 75/25.
  const auto counts = ApportionCounts({3.0, 1.0}, 100);
  EXPECT_EQ(counts[0], 75u);
  EXPECT_EQ(counts[1], 25u);
}

// -------------------------------------------------------------- Assignment

TEST(AssignTest, MatchesApportionedCounts) {
  Rng rng(4);
  std::vector<double> values(100);
  for (double& v : values) v = rng.UniformDouble();
  const std::vector<double> masses{0.1, 0.2, 0.3, 0.4};
  const auto assignment = AssignByOrderStatistics(values, masses);
  std::vector<std::size_t> histogram(4, 0);
  for (std::size_t a : assignment) ++histogram[a];
  EXPECT_EQ(histogram[0], 10u);
  EXPECT_EQ(histogram[1], 20u);
  EXPECT_EQ(histogram[2], 30u);
  EXPECT_EQ(histogram[3], 40u);
}

TEST(AssignTest, MonotoneInValue) {
  Rng rng(5);
  std::vector<double> values(500);
  for (double& v : values) v = rng.UniformDouble();
  const std::vector<double> masses{0.25, 0.25, 0.25, 0.25};
  const auto assignment = AssignByOrderStatistics(values, masses);
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = 0; j < values.size(); ++j) {
      if (values[i] < values[j]) {
        ASSERT_LE(assignment[i], assignment[j]);
      }
    }
  }
}

TEST(AssignTest, NoNoiseRecoversTrueIntervals) {
  // With exact masses and untouched values, dealing must reproduce the
  // true interval of every value.
  const Partition p(0.0, 1.0, 4);
  Rng rng(6);
  std::vector<double> values(400);
  for (double& v : values) v = rng.UniformDouble();
  stats::Histogram h(0.0, 1.0, 4);
  h.AddAll(values);
  const auto assignment = AssignByOrderStatistics(values, h.Masses());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(assignment[i], p.IntervalOf(values[i]));
  }
}

TEST(AssignTest, EmptyInput) {
  EXPECT_TRUE(AssignByOrderStatistics({}, {0.5, 0.5}).empty());
}

// ----------------------------------------------------------- Reconstructor

TEST(ReconstructorTest, NoNoiseGivesExactHistogram) {
  const Partition p(0.0, 1.0, 10);
  Rng rng(7);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.UniformDouble();
  const BayesReconstructor rec(NoiseModel::None(), {});
  const Reconstruction r = rec.Fit(values, p);
  stats::Histogram h(0.0, 1.0, 10);
  h.AddAll(values);
  const auto expected = h.Masses();
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(r.masses[k], expected[k], 1e-12);
  }
}

TEST(ReconstructorTest, EmptyInputYieldsUniform) {
  const Partition p(0.0, 1.0, 8);
  const BayesReconstructor rec(NoiseModel::Uniform(0.1), {});
  const Reconstruction r = rec.Fit({}, p);
  for (double m : r.masses) EXPECT_DOUBLE_EQ(m, 0.125);
}

TEST(ReconstructorTest, CdfAtEdge) {
  Reconstruction r;
  r.masses = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(r.CdfAtEdge(0), 0.0);
  EXPECT_NEAR(r.CdfAtEdge(2), 0.3, 1e-12);
  EXPECT_NEAR(r.CdfAtEdge(4), 1.0, 1e-12);
}

TEST(ReconstructorTest, CdfAtEdgeBoundaryIndices) {
  // k = 0 is the empty prefix and k = K the full sum, for any K —
  // including the degenerate single-interval reconstruction.
  Reconstruction single;
  single.masses = {1.0};
  EXPECT_DOUBLE_EQ(single.CdfAtEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(single.CdfAtEdge(1), 1.0);

  Reconstruction skewed;
  skewed.masses = {0.7, 0.0, 0.3};
  EXPECT_DOUBLE_EQ(skewed.CdfAtEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(skewed.CdfAtEdge(1), 0.7);
  EXPECT_DOUBLE_EQ(skewed.CdfAtEdge(2), 0.7);  // zero-mass interval
  EXPECT_DOUBLE_EQ(skewed.CdfAtEdge(3), 1.0);
}

TEST(ReconstructorTest, CdfAtEdgeOfEmptySampleUniformPrior) {
  // An empty sample reconstructs to the uniform EM prior, whose CDF at
  // edge k must be exactly k / K (prefix sums of equal masses).
  const Partition p(0.0, 1.0, 8);
  const BayesReconstructor rec(NoiseModel::Uniform(0.1), {});
  const Reconstruction r = rec.Fit({}, p);
  ASSERT_EQ(r.masses.size(), 8u);
  EXPECT_DOUBLE_EQ(r.CdfAtEdge(0), 0.0);
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_NEAR(r.CdfAtEdge(k), static_cast<double>(k) / 8.0, 1e-12)
        << "edge " << k;
  }
}

struct ReconCase {
  const char* name;
  NoiseKind noise;
  double privacy;
  bool binned;
};

class ReconstructionProperty : public ::testing::TestWithParam<ReconCase> {
 protected:
  // Draws a plateau sample, perturbs it, reconstructs it, and returns the
  // pieces the properties below inspect.
  void Run(std::size_t n = 8000) {
    Rng rng(11);
    const stats::PlateauDistribution truth(0.0, 1.0, 0.25);
    noise_ = std::make_unique<NoiseModel>(perturb::NoiseForPrivacy(
        GetParam().noise, GetParam().privacy, 1.0, 0.95));
    std::vector<double> perturbed(n);
    truth_hist_ = std::make_unique<stats::Histogram>(0.0, 1.0, 20);
    perturbed_hist_ = std::make_unique<stats::Histogram>(0.0, 1.0, 20);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = truth.Sample(&rng);
      const double w = x + noise_->Sample(&rng);
      truth_hist_->Add(x);
      perturbed_hist_->Add(w);
      perturbed[i] = w;
    }
    ReconstructionOptions options;  // default stopping criterion
    options.binned = GetParam().binned;
    const BayesReconstructor rec(*noise_, options);
    result_ = rec.Fit(perturbed, Partition(0.0, 1.0, 20));
  }

  std::unique_ptr<NoiseModel> noise_;
  std::unique_ptr<stats::Histogram> truth_hist_;
  std::unique_ptr<stats::Histogram> perturbed_hist_;
  Reconstruction result_;
};

TEST_P(ReconstructionProperty, MassesFormADistribution) {
  Run();
  double total = 0.0;
  for (double m : result_.masses) {
    EXPECT_GE(m, 0.0);
    total += m;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ReconstructionProperty, LogLikelihoodIsMonotone) {
  Run();
  const auto& trace = result_.log_likelihood_trace;
  ASSERT_GE(trace.size(), 2u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], trace[i - 1] - 1e-6)
        << "EM log-likelihood decreased at iteration " << i;
  }
}

TEST_P(ReconstructionProperty, BeatsPerturbedHistogram) {
  Run();
  const double recon_err =
      stats::TotalVariation(result_.masses, truth_hist_->Masses());
  const double raw_err =
      stats::TotalVariation(perturbed_hist_->Masses(), truth_hist_->Masses());
  EXPECT_LT(recon_err, raw_err)
      << "reconstruction should beat using perturbed values directly";
  EXPECT_LT(recon_err, 0.15);
}

TEST_P(ReconstructionProperty, ChiSquareTraceEndsSmall) {
  Run();
  ASSERT_FALSE(result_.chi_square_trace.empty());
  // Either converged below epsilon or hit the cap with a small statistic.
  EXPECT_LT(result_.chi_square_trace.back(), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    NoiseKindsAndModes, ReconstructionProperty,
    ::testing::Values(
        ReconCase{"uniform100_binned", NoiseKind::kUniform, 1.0, true},
        ReconCase{"uniform50_binned", NoiseKind::kUniform, 0.5, true},
        ReconCase{"uniform200_binned", NoiseKind::kUniform, 2.0, true},
        ReconCase{"gaussian100_binned", NoiseKind::kGaussian, 1.0, true},
        ReconCase{"gaussian50_binned", NoiseKind::kGaussian, 0.5, true},
        ReconCase{"uniform100_exact", NoiseKind::kUniform, 1.0, false},
        ReconCase{"gaussian100_exact", NoiseKind::kGaussian, 1.0, false}),
    [](const ::testing::TestParamInfo<ReconCase>& info) {
      return info.param.name;
    });

TEST(ReconstructorTest, BinnedAndExactAgree) {
  Rng rng(13);
  const stats::TriangleDistribution truth(0.0, 1.0);
  const NoiseModel noise = NoiseModel::Uniform(0.3);
  std::vector<double> perturbed(4000);
  for (double& w : perturbed) w = truth.Sample(&rng) + noise.Sample(&rng);
  ReconstructionOptions binned, exact;
  binned.binned = true;
  exact.binned = false;
  const Partition p(0.0, 1.0, 20);
  const Reconstruction rb = BayesReconstructor(noise, binned).Fit(perturbed, p);
  const Reconstruction re = BayesReconstructor(noise, exact).Fit(perturbed, p);
  EXPECT_LT(stats::TotalVariation(rb.masses, re.masses), 0.1);
}

TEST(ReconstructorTest, StopsEarlyWhenConverged) {
  Rng rng(17);
  const NoiseModel noise = NoiseModel::Uniform(0.05);  // weak noise
  std::vector<double> perturbed(2000);
  for (double& w : perturbed) w = rng.UniformDouble() + noise.Sample(&rng);
  ReconstructionOptions options;
  options.max_iterations = 500;
  options.chi_square_epsilon = 1e-6;
  const BayesReconstructor rec(noise, options);
  const Reconstruction r = rec.Fit(perturbed, Partition(0.0, 1.0, 10));
  EXPECT_LT(r.iterations, 500u);
  EXPECT_LT(r.chi_square_trace.back(), 1e-6);
}

TEST(ReconstructorTest, SampleCountIsRecorded) {
  Rng rng(19);
  std::vector<double> perturbed(321);
  for (double& w : perturbed) w = rng.UniformDouble();
  const BayesReconstructor rec(NoiseModel::Uniform(0.2), {});
  EXPECT_EQ(rec.Fit(perturbed, Partition(0.0, 1.0, 5)).sample_count, 321u);
}

// --------------------------------------------------- SIMD path determinism

namespace simd = engine::simd;

// Restores the dispatched path on scope exit so a failing test can't leak
// a forced path into later tests.
struct PathGuard {
  simd::Path saved = simd::ActivePath();
  ~PathGuard() { (void)simd::SetPath(saved); }
};

std::vector<double> PlateauPerturbed(std::size_t n, const NoiseModel& noise) {
  Rng rng(31);
  const stats::PlateauDistribution truth(0.0, 1.0, 0.25);
  std::vector<double> w(n);
  for (double& v : w) v = truth.Sample(&rng) + noise.Sample(&rng);
  return w;
}

bool BytesEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// The tentpole determinism contract: every dispatched path produces
// byte-identical Reconstruction::masses to the scalar lane-blocked
// reference, at every pool size (0 = inline) — for both noise kinds and
// for the streaming FitFromCounts entry point.
TEST(SimdDeterminismProperty, PathsByteIdenticalAcrossThreadCounts) {
  PathGuard guard;
  std::vector<simd::Path> paths{simd::Path::kScalar};
  if (simd::Avx2Supported()) paths.push_back(simd::Path::kAvx2);
  const std::size_t thread_counts[] = {0, 1, 2, 8};
  for (const NoiseModel& noise :
       {NoiseModel::Uniform(0.3), NoiseModel::Gaussian(0.15)}) {
    const std::vector<double> w = PlateauPerturbed(4000, noise);
    const Partition p(0.0, 1.0, 20);
    const BayesReconstructor rec(noise, {});

    ASSERT_TRUE(simd::SetPath(simd::Path::kScalar).ok());
    engine::ThreadPool one(1);
    const Reconstruction reference =
        rec.FitParallel(w, p, &one, /*shard_size=*/512);
    ASSERT_FALSE(reference.masses.empty());

    for (simd::Path path : paths) {
      ASSERT_TRUE(simd::SetPath(path).ok());
      for (std::size_t threads : thread_counts) {
        engine::ThreadPool pool(threads);
        const Reconstruction got =
            rec.FitParallel(w, p, threads == 0 ? nullptr : &pool, 512);
        EXPECT_TRUE(BytesEqual(got.masses, reference.masses))
            << "path=" << simd::PathName(path) << " threads=" << threads;
        EXPECT_EQ(got.log_likelihood_trace, reference.log_likelihood_trace)
            << "path=" << simd::PathName(path) << " threads=" << threads;
      }
    }
  }
}

TEST(SimdDeterminismProperty, OffPathStaysFiniteAndClose) {
  // kOff preserves the historical sequential loops; its masses may differ
  // from the blocked paths by summation-order rounding only.
  PathGuard guard;
  const NoiseModel noise = NoiseModel::Uniform(0.3);
  const std::vector<double> w = PlateauPerturbed(4000, noise);
  const Partition p(0.0, 1.0, 20);
  const BayesReconstructor rec(noise, {});
  ASSERT_TRUE(simd::SetPath(simd::Path::kScalar).ok());
  const Reconstruction blocked = rec.Fit(w, p);
  ASSERT_TRUE(simd::SetPath(simd::Path::kOff).ok());
  const Reconstruction off = rec.Fit(w, p);
  ASSERT_EQ(off.masses.size(), blocked.masses.size());
  for (std::size_t k = 0; k < off.masses.size(); ++k) {
    EXPECT_NEAR(off.masses[k], blocked.masses[k], 1e-9) << "interval " << k;
  }
}

// --------------------------------------------------------- KernelTable

TEST(KernelTableTest, CachedTableIsByteIdenticalToFreshBuild) {
  const NoiseModel noise = NoiseModel::Uniform(0.3);
  const Partition p(0.0, 1.0, 20);
  const BayesReconstructor rec(noise, {});
  const KernelTable table = rec.BuildKernelTable(p, nullptr);
  EXPECT_TRUE(table.Matches(noise, p, rec.PerturbedBinning(p)));
  EXPECT_EQ(table.stride, simd::PadLanes(p.intervals()));
  EXPECT_GT(table.ApproxHeapBytes(), 0u);

  std::vector<double> weights(table.wbins, 0.0);
  weights[table.wbins / 2] = 100.0;
  weights[table.wbins / 3] = 50.0;
  const Reconstruction cached =
      rec.FitFromCounts(weights, 150.0, p, nullptr, nullptr, &table);
  const Reconstruction fresh =
      rec.FitFromCounts(weights, 150.0, p, nullptr, nullptr, nullptr);
  EXPECT_TRUE(BytesEqual(cached.masses, fresh.masses));
}

TEST(KernelTableTest, StaleTableIsRebuiltNotTrusted) {
  const NoiseModel noise = NoiseModel::Uniform(0.3);
  const BayesReconstructor rec(noise, {});
  const Partition old_p(0.0, 1.0, 10);
  const KernelTable stale = rec.BuildKernelTable(old_p, nullptr);

  const Partition new_p(0.0, 1.0, 20);
  EXPECT_FALSE(stale.Matches(noise, new_p, rec.PerturbedBinning(new_p)));
  const std::size_t wbins = rec.PerturbedBinning(new_p).bins();
  std::vector<double> weights(wbins, 1.0);
  const double total = static_cast<double>(wbins);
  // Passing the stale table must not crash or skew the fit — it is
  // rebuilt internally and the result equals the no-cache call.
  const Reconstruction with_stale =
      rec.FitFromCounts(weights, total, new_p, nullptr, nullptr, &stale);
  const Reconstruction without =
      rec.FitFromCounts(weights, total, new_p, nullptr, nullptr, nullptr);
  EXPECT_TRUE(BytesEqual(with_stale.masses, without.masses));
}

// ------------------------------------------------- degenerate-input paths

TEST(ReconstructorTest, TinyDensityFallbackAbsorbsDeadBins) {
  // U[-0.25, 0.25] noise over [0,1]/K=10: the perturbed layout extends 3
  // bins past each edge, and the outermost extension bin is farther than
  // the noise support from every partition midpoint — its kernel row is
  // all zeros. Weight placed there must flow to the fallback interval,
  // with no NaN, no abort, and a normalized result.
  const NoiseModel noise = NoiseModel::Uniform(0.25);
  const Partition p(0.0, 1.0, 10);
  const BayesReconstructor rec(noise, {});
  const stats::Histogram whist = rec.PerturbedBinning(p);
  ASSERT_EQ(whist.bins(), 16u);

  std::vector<double> weights(whist.bins(), 0.0);
  weights[0] = 5.0;  // dead bin: no component density reaches it
  const Reconstruction r =
      rec.FitFromCounts(weights, 5.0, p, nullptr, nullptr, nullptr);
  ASSERT_EQ(r.masses.size(), 10u);
  double total = 0.0;
  for (double m : r.masses) {
    EXPECT_TRUE(std::isfinite(m));
    EXPECT_GE(m, 0.0);
    total += m;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The fallback interval of the leftmost bin is interval 0.
  EXPECT_GT(r.masses[0], 0.99);
  for (double ll : r.log_likelihood_trace) EXPECT_TRUE(std::isfinite(ll));
}

TEST(ReconstructorTest, NoNoiseEmptyInputYieldsUniform) {
  // kNone takes the exact-histogram path, whose empty-sample branch must
  // return the uniform prior (HistogramMasses' empty-input contract).
  const Partition p(0.0, 1.0, 8);
  const BayesReconstructor rec(NoiseModel::None(), {});
  const Reconstruction r = rec.Fit({}, p);
  ASSERT_EQ(r.masses.size(), 8u);
  for (double m : r.masses) EXPECT_DOUBLE_EQ(m, 0.125);
  EXPECT_EQ(r.sample_count, 0u);
}

// ---------------------------------------------------------------- ByClass

TEST(ByClassTest, SeparatesClassDistributions) {
  // Class 0 lives on the left half, class 1 on the right; after uniform
  // perturbation the per-class reconstructions must still separate.
  data::Schema schema({{"x", data::AttributeKind::kContinuous, 0.0, 1.0}});
  data::Dataset d(schema, 2);
  Rng rng(23);
  const NoiseModel noise = perturb::NoiseForPrivacy(NoiseKind::kUniform, 0.5,
                                                    1.0, 0.95);
  for (int i = 0; i < 4000; ++i) {
    const int label = i % 2;
    const double x = label == 0 ? rng.UniformReal(0.0, 0.5)
                                : rng.UniformReal(0.5, 1.0);
    d.AddRow({x + noise.Sample(&rng)}, label);
  }
  const Partition p(0.0, 1.0, 10);
  const BayesReconstructor rec(noise, {});
  const auto recons = ReconstructByClass(d, 0, p, rec);
  ASSERT_EQ(recons.size(), 2u);
  // Mass below 0.5 should be large for class 0, small for class 1.
  EXPECT_GT(recons[0].CdfAtEdge(5), 0.8);
  EXPECT_LT(recons[1].CdfAtEdge(5), 0.2);
}

TEST(ByClassTest, CombinedMatchesPooledFit) {
  data::Schema schema({{"x", data::AttributeKind::kContinuous, 0.0, 1.0}});
  data::Dataset d(schema, 2);
  Rng rng(29);
  const NoiseModel noise = NoiseModel::Gaussian(0.1);
  std::vector<double> pooled;
  for (int i = 0; i < 1000; ++i) {
    const double w = rng.UniformDouble() + noise.Sample(&rng);
    d.AddRow({w}, i % 2);
    pooled.push_back(w);
  }
  const Partition p(0.0, 1.0, 10);
  const BayesReconstructor rec(noise, {});
  const Reconstruction combined = ReconstructCombined(d, 0, p, rec);
  const Reconstruction direct = rec.Fit(pooled, p);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(combined.masses[k], direct.masses[k], 1e-12);
  }
}

}  // namespace
}  // namespace ppdm::reconstruct
