// Tests for noise models, the §3 privacy quantification, the randomizer,
// and the value-class-membership discretizer.

#include <cmath>

#include <gtest/gtest.h>

#include "perturb/discretize.h"
#include "perturb/noise_model.h"
#include "perturb/randomizer.h"
#include "stats/summary.h"
#include "synth/generator.h"

namespace ppdm::perturb {
namespace {

// ------------------------------------------------------------ NoiseModel

TEST(NoiseModelTest, KindNames) {
  EXPECT_EQ(NoiseKindName(NoiseKind::kNone), "none");
  EXPECT_EQ(NoiseKindName(NoiseKind::kUniform), "uniform");
  EXPECT_EQ(NoiseKindName(NoiseKind::kGaussian), "gaussian");
}

TEST(NoiseModelTest, UniformPdfIsFlat) {
  const NoiseModel m = NoiseModel::Uniform(2.0);
  EXPECT_DOUBLE_EQ(m.Pdf(0.0), 0.25);
  EXPECT_DOUBLE_EQ(m.Pdf(1.9), 0.25);
  EXPECT_DOUBLE_EQ(m.Pdf(2.1), 0.0);
  EXPECT_DOUBLE_EQ(m.Pdf(-2.1), 0.0);
}

TEST(NoiseModelTest, UniformCdf) {
  const NoiseModel m = NoiseModel::Uniform(2.0);
  EXPECT_DOUBLE_EQ(m.Cdf(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(m.Cdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(m.Cdf(2.0), 1.0);
  EXPECT_DOUBLE_EQ(m.Cdf(1.0), 0.75);
}

TEST(NoiseModelTest, GaussianPdfAndCdf) {
  const NoiseModel m = NoiseModel::Gaussian(2.0);
  EXPECT_NEAR(m.Pdf(0.0), 0.3989422804014327 / 2.0, 1e-12);
  EXPECT_NEAR(m.Cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(m.Cdf(2.0 * 1.959963984540054), 0.975, 1e-9);
}

TEST(NoiseModelTest, NoneIsDegenerate) {
  const NoiseModel m = NoiseModel::None();
  Rng rng(1);
  EXPECT_DOUBLE_EQ(m.Sample(&rng), 0.0);
  EXPECT_DOUBLE_EQ(m.PrivacyAtConfidence(0.95), 0.0);
  EXPECT_DOUBLE_EQ(m.EffectiveHalfWidth(), 0.0);
}

TEST(NoiseModelTest, SampleMomentsUniform) {
  const NoiseModel m = NoiseModel::Uniform(3.0);
  Rng rng(2);
  stats::DescriptiveStats s;
  for (int i = 0; i < 100000; ++i) s.Add(m.Sample(&rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 3.0 / std::sqrt(3.0), 0.02);
  EXPECT_GE(s.min(), -3.0);
  EXPECT_LE(s.max(), 3.0);
}

TEST(NoiseModelTest, SampleMomentsGaussian) {
  const NoiseModel m = NoiseModel::Gaussian(1.5);
  Rng rng(3);
  stats::DescriptiveStats s;
  for (int i = 0; i < 100000; ++i) s.Add(m.Sample(&rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.5, 0.02);
}

// ------------------------------------------------- Privacy quantification

TEST(PrivacyTest, UniformPrivacyIsTwoAlphaC) {
  const NoiseModel m = NoiseModel::Uniform(10.0);
  EXPECT_NEAR(m.PrivacyAtConfidence(0.95), 19.0, 1e-12);
  EXPECT_NEAR(m.PrivacyAtConfidence(0.50), 10.0, 1e-12);
}

TEST(PrivacyTest, GaussianPrivacyAt95IsAbout392Sigma) {
  const NoiseModel m = NoiseModel::Gaussian(1.0);
  EXPECT_NEAR(m.PrivacyAtConfidence(0.95), 3.9199, 1e-3);
}

TEST(PrivacyTest, NoiseForPrivacyInvertsQuantification) {
  for (NoiseKind kind : {NoiseKind::kUniform, NoiseKind::kGaussian}) {
    for (double pf : {0.25, 0.5, 1.0, 2.0}) {
      const NoiseModel m = NoiseForPrivacy(kind, pf, 130000.0, 0.95);
      EXPECT_NEAR(m.PrivacyAtConfidence(0.95), pf * 130000.0, 1e-6)
          << NoiseKindName(kind) << " pf=" << pf;
    }
  }
}

TEST(PrivacyTest, HundredPercentUniformAlphaMatchesHandDerivation) {
  // 2 * alpha * 0.95 = range  =>  alpha = range / 1.9.
  const NoiseModel m = NoiseForPrivacy(NoiseKind::kUniform, 1.0, 1.9, 0.95);
  EXPECT_NEAR(m.scale(), 1.0, 1e-12);
}

TEST(PrivacyTest, GaussianGivesMorePrivacyAtHigherConfidence) {
  // The paper's argument for Gaussian noise: at equal 95% privacy, its
  // privacy at 99.9% confidence is much higher than uniform's.
  const NoiseModel u = NoiseForPrivacy(NoiseKind::kUniform, 1.0, 1.0, 0.95);
  const NoiseModel g = NoiseForPrivacy(NoiseKind::kGaussian, 1.0, 1.0, 0.95);
  EXPECT_GT(g.PrivacyAtConfidence(0.999), u.PrivacyAtConfidence(0.999));
}

// -------------------------------------------------------------- Randomizer

TEST(RandomizerTest, PerturbPreservesShapeAndLabels) {
  synth::GeneratorOptions gen;
  gen.num_records = 500;
  const data::Dataset d = synth::Generate(gen);
  RandomizerOptions opt;
  opt.privacy_fraction = 1.0;
  const Randomizer rz(d.schema(), opt);
  const data::Dataset p = rz.Perturb(d);
  ASSERT_EQ(p.NumRows(), d.NumRows());
  ASSERT_EQ(p.NumCols(), d.NumCols());
  for (std::size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(p.Label(r), d.Label(r));  // labels never perturbed
  }
  EXPECT_TRUE(p.Validate().ok());
}

TEST(RandomizerTest, NoiseBoundedForUniform) {
  synth::GeneratorOptions gen;
  gen.num_records = 2000;
  const data::Dataset d = synth::Generate(gen);
  RandomizerOptions opt;
  opt.kind = NoiseKind::kUniform;
  opt.privacy_fraction = 0.5;
  const Randomizer rz(d.schema(), opt);
  const data::Dataset p = rz.Perturb(d);
  for (std::size_t c = 0; c < d.NumCols(); ++c) {
    const double alpha = rz.ModelFor(c).scale();
    for (std::size_t r = 0; r < d.NumRows(); ++r) {
      EXPECT_LE(std::fabs(p.At(r, c) - d.At(r, c)), alpha + 1e-9);
    }
  }
}

TEST(RandomizerTest, NoiseMeanIsZeroPerColumn) {
  synth::GeneratorOptions gen;
  gen.num_records = 20000;
  const data::Dataset d = synth::Generate(gen);
  RandomizerOptions opt;
  opt.kind = NoiseKind::kGaussian;
  opt.privacy_fraction = 1.0;
  const Randomizer rz(d.schema(), opt);
  const data::Dataset p = rz.Perturb(d);
  for (std::size_t c = 0; c < d.NumCols(); ++c) {
    stats::DescriptiveStats s;
    for (std::size_t r = 0; r < d.NumRows(); ++r) {
      s.Add(p.At(r, c) - d.At(r, c));
    }
    const double sigma = rz.ModelFor(c).scale();
    EXPECT_NEAR(s.mean(), 0.0, 4.0 * sigma / std::sqrt(20000.0))
        << "column " << c;
  }
}

TEST(RandomizerTest, ScalesNoiseToAttributeRange) {
  const data::Schema schema = synth::BenchmarkSchema();
  RandomizerOptions opt;
  opt.kind = NoiseKind::kUniform;
  opt.privacy_fraction = 1.0;
  const Randomizer rz(schema, opt);
  // salary range 130000 vs age range 60: alphas must scale accordingly.
  const double ratio = rz.ModelFor(synth::kSalary).scale() /
                       rz.ModelFor(synth::kAge).scale();
  EXPECT_NEAR(ratio, 130000.0 / 60.0, 1e-9);
}

TEST(RandomizerTest, ZeroPrivacyIsIdentity) {
  synth::GeneratorOptions gen;
  gen.num_records = 100;
  const data::Dataset d = synth::Generate(gen);
  RandomizerOptions opt;
  opt.privacy_fraction = 0.0;
  const Randomizer rz(d.schema(), opt);
  const data::Dataset p = rz.Perturb(d);
  for (std::size_t r = 0; r < d.NumRows(); ++r) {
    for (std::size_t c = 0; c < d.NumCols(); ++c) {
      EXPECT_DOUBLE_EQ(p.At(r, c), d.At(r, c));
    }
  }
}

TEST(RandomizerTest, DeterministicForSeed) {
  synth::GeneratorOptions gen;
  gen.num_records = 50;
  const data::Dataset d = synth::Generate(gen);
  RandomizerOptions opt;
  opt.seed = 42;
  const Randomizer a(d.schema(), opt);
  const Randomizer b(d.schema(), opt);
  const data::Dataset pa = a.Perturb(d);
  const data::Dataset pb = b.Perturb(d);
  for (std::size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(pa.At(r, 0), pb.At(r, 0));
  }
}

TEST(RandomizerTest, PerturbRecordMatchesModels) {
  const data::Schema schema = synth::BenchmarkSchema();
  RandomizerOptions opt;
  opt.kind = NoiseKind::kUniform;
  opt.privacy_fraction = 0.25;
  const Randomizer rz(schema, opt);
  Rng rng(1);
  std::vector<double> record = synth::SampleRecord(&rng);
  const std::vector<double> original = record;
  Rng noise_rng(2);
  rz.PerturbRecord(&record, &noise_rng);
  for (std::size_t c = 0; c < record.size(); ++c) {
    EXPECT_LE(std::fabs(record[c] - original[c]),
              rz.ModelFor(c).scale() + 1e-9);
  }
}

// -------------------------------------------------------------- Discretize

TEST(DiscretizeTest, ReplacesValuesWithClassMidpoints) {
  data::Schema schema({{"x", data::AttributeKind::kContinuous, 0.0, 10.0}});
  data::Dataset d(schema, 2);
  d.AddRow({0.5}, 0);
  d.AddRow({9.9}, 1);
  d.AddRow({5.0}, 0);
  DiscretizeOptions opt;
  opt.classes = 5;  // width 2, midpoints 1,3,5,7,9
  const data::Dataset q = DiscretizeValues(d, opt);
  EXPECT_DOUBLE_EQ(q.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(q.At(1, 0), 9.0);
  EXPECT_DOUBLE_EQ(q.At(2, 0), 5.0);  // boundary value goes up
}

TEST(DiscretizeTest, IdempotentOnMidpoints) {
  data::Schema schema({{"x", data::AttributeKind::kContinuous, 0.0, 10.0}});
  data::Dataset d(schema, 2);
  d.AddRow({3.7}, 0);
  DiscretizeOptions opt;
  opt.classes = 10;
  const data::Dataset once = DiscretizeValues(d, opt);
  const data::Dataset twice = DiscretizeValues(once, opt);
  EXPECT_DOUBLE_EQ(once.At(0, 0), twice.At(0, 0));
}

TEST(DiscretizeTest, PrivacyFractionIsInverseClasses) {
  EXPECT_DOUBLE_EQ(DiscretizationPrivacyFraction(10), 0.1);
  EXPECT_DOUBLE_EQ(DiscretizationPrivacyFraction(4), 0.25);
}

}  // namespace
}  // namespace ppdm::perturb
