// Chaos suite for the resilience layer: deterministic fault-point
// triggers (every:N / prob:P:SEED / once / off, transient vs permanent),
// the retry/backoff policy, every registered fault point exercised
// through its real code path (store put/get stages, spill demotion,
// registry re-admission, service admission), graceful degradation in the
// session registry (failed spill keeps data resident; failed readmit
// surfaces a clean Status), service admission control (bounded queue,
// deadlines, cancellation, drain), and the determinism contract: a
// stream that completes under injected transient faults reconstructs
// byte-identically to a no-fault run at 0/1/2/8 threads.
//
// Every test disarms all points on entry and exit — faults are process
// globals and must never leak between tests.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset_session.h"
#include "api/registry.h"
#include "api/service.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/status.h"
#include "data/row_batch.h"
#include "perturb/randomizer.h"
#include "store/snapshot_store.h"
#include "store/spill_store.h"
#include "synth/generator.h"

namespace ppdm {
namespace {

namespace fs = std::filesystem;

// A unique on-disk directory per test, removed on destruction.
struct TempDir {
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path = (fs::temp_directory_path() /
            (std::string("ppdm_fault_test_") + info->test_suite_name() +
             "_" + info->name()))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// Faults are process-wide; a leaked arming would poison every later test.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DisarmAll(); }
  void TearDown() override { fault::DisarmAll(); }
};

api::DatasetSessionSpec BenchmarkDatasetSpec(std::size_t num_attrs,
                                             std::size_t intervals = 8) {
  api::DatasetSessionSpec spec;
  spec.schema = synth::BenchmarkSchema();
  for (std::size_t column = 0; column < num_attrs; ++column) {
    api::AttributeSpec attr;
    attr.column = column;
    attr.intervals = intervals;
    attr.noise = perturb::NoiseKind::kUniform;
    attr.privacy_fraction = 1.0;
    spec.attributes.push_back(attr);
  }
  spec.shard_size = 256;
  return spec;
}

// Perturbed benchmark records, flattened row-major (the session's arrival
// shape).
std::vector<double> PerturbedRows(std::size_t num_records,
                                  std::size_t* num_cols,
                                  std::uint64_t seed = 23) {
  synth::GeneratorOptions gen;
  gen.num_records = num_records;
  gen.seed = seed;
  const data::Dataset original = synth::Generate(gen);
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  noise.seed = seed ^ 0x5DEECE66DULL;
  const data::Dataset perturbed =
      perturb::Randomizer(original.schema(), noise).Perturb(original);
  *num_cols = perturbed.NumCols();
  std::vector<double> rows(perturbed.NumRows() * perturbed.NumCols());
  for (std::size_t c = 0; c < perturbed.NumCols(); ++c) {
    const std::vector<double>& column = perturbed.Column(c);
    for (std::size_t r = 0; r < perturbed.NumRows(); ++r) {
      rows[r * perturbed.NumCols() + c] = column[r];
    }
  }
  return rows;
}

bool ReconstructionsIdentical(const reconstruct::Reconstruction& a,
                              const reconstruct::Reconstruction& b) {
  return a.masses == b.masses && a.iterations == b.iterations &&
         a.chi_square_trace == b.chi_square_trace &&
         a.log_likelihood_trace == b.log_likelihood_trace &&
         a.sample_count == b.sample_count;
}

// ----------------------------------------------------------- fault points

TEST_F(FaultTest, DisarmedPointNeverFires) {
  fault::FaultPoint& point = fault::Point("test.disarmed");
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(point.Fire().ok());
  EXPECT_FALSE(point.armed());
  EXPECT_EQ(point.injected(), 0u);
}

TEST_F(FaultTest, EveryNthFailsExactlyTheNthFirings) {
  ASSERT_TRUE(fault::ArmFromSpec("test.nth=every:3").ok());
  fault::FaultPoint& point = fault::Point("test.nth");
  std::vector<bool> failed;
  for (int i = 0; i < 9; ++i) failed.push_back(!point.Fire().ok());
  EXPECT_EQ(failed, (std::vector<bool>{false, false, true, false, false,
                                       true, false, false, true}));
}

TEST_F(FaultTest, OnceFailsExactlyOnceThenDisarms) {
  ASSERT_TRUE(fault::ArmFromSpec("test.once=once").ok());
  fault::FaultPoint& point = fault::Point("test.once");
  EXPECT_TRUE(point.armed());
  EXPECT_FALSE(point.Fire().ok());
  EXPECT_FALSE(point.armed());
  EXPECT_TRUE(point.Fire().ok());
  EXPECT_EQ(point.injected(), 1u);
}

TEST_F(FaultTest, ProbabilityStreamIsDeterministicInItsSeed) {
  auto sample = [](const std::string& spec) {
    EXPECT_TRUE(fault::ArmFromSpec(spec).ok());
    fault::FaultPoint& point = fault::Point("test.prob");
    std::vector<bool> failed;
    for (int i = 0; i < 64; ++i) failed.push_back(!point.Fire().ok());
    return failed;
  };
  const std::vector<bool> first = sample("test.prob=prob:0.5:99");
  const std::vector<bool> second = sample("test.prob=prob:0.5:99");
  const std::vector<bool> other_seed = sample("test.prob=prob:0.5:7");
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other_seed);
  // p=0.5 over 64 draws: both outcomes must appear.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FaultTest, ProbabilityOneAlwaysFiresAndZeroNeverDoes) {
  ASSERT_TRUE(fault::ArmFromSpec("test.p1=prob:1").ok());
  ASSERT_TRUE(fault::ArmFromSpec("test.p0=prob:0").ok());
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(fault::Point("test.p1").Fire().ok());
    EXPECT_TRUE(fault::Point("test.p0").Fire().ok());
  }
}

TEST_F(FaultTest, TransientAndPermanentCodesMatchTheRetryClassifier) {
  ASSERT_TRUE(fault::ArmFromSpec("test.t=once;test.p=once,permanent").ok());
  const Status transient = fault::Point("test.t").Fire();
  const Status permanent = fault::Point("test.p").Fire();
  EXPECT_EQ(transient.code(), StatusCode::kUnavailable);
  EXPECT_EQ(permanent.code(), StatusCode::kInternal);
  EXPECT_TRUE(retry::IsTransient(transient));
  EXPECT_FALSE(retry::IsTransient(permanent));
}

TEST_F(FaultTest, SpecOffDisarmsAndDisarmAllClearsEverything) {
  ASSERT_TRUE(fault::ArmFromSpec("test.a=every:2;test.b=prob:1").ok());
  EXPECT_TRUE(fault::AnyArmed());
  ASSERT_TRUE(fault::ArmFromSpec("test.a=off").ok());
  EXPECT_FALSE(fault::Point("test.a").armed());
  EXPECT_TRUE(fault::Point("test.b").armed());
  fault::DisarmAll();
  EXPECT_FALSE(fault::AnyArmed());
}

TEST_F(FaultTest, MalformedSpecsAreInvalidArgument) {
  const char* bad[] = {
      "noequals",          "=every:2",        "x=",
      "x=every:",          "x=every:0",       "x=every:abc",
      "x=prob:",           "x=prob:1.5",      "x=prob:-0.1",
      "x=prob:0.5:junk",   "x=sometimes",     "x=once,maybe",
  };
  for (const char* spec : bad) {
    const Status status = fault::ArmFromSpec(spec);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "spec: " << spec << " -> " << status.ToString();
  }
  // Entries are applied left to right; a malformed tail keeps the valid
  // head armed.
  EXPECT_FALSE(fault::ArmFromSpec("test.head=prob:1;bogus").ok());
  EXPECT_TRUE(fault::Point("test.head").armed());
}

TEST_F(FaultTest, RegisteredPointsListsArmedAndFiredNames) {
  (void)fault::Point("test.registered");
  const std::vector<std::string> names = fault::RegisteredPoints();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.registered"),
            names.end());
}

// ------------------------------------------------------------------ retry

TEST_F(FaultTest, RetryRidesThroughTransientFailures) {
  retry::RetryPolicy policy;
  policy.max_attempts = 4;
  std::vector<std::chrono::microseconds> slept;
  policy.sleep = [&slept](std::chrono::microseconds d) {
    slept.push_back(d);
  };
  int calls = 0;
  const Status status = retry::Retry(policy, [&calls]() -> Status {
    ++calls;
    if (calls < 3) return Status::Unavailable("flaky");
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], policy.BackoffFor(1));
  EXPECT_EQ(slept[1], policy.BackoffFor(2));
}

TEST_F(FaultTest, RetryReturnsPermanentFailuresImmediately) {
  retry::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep = [](std::chrono::microseconds) {
    FAIL() << "permanent failures must not back off";
  };
  int calls = 0;
  const Status status = retry::Retry(policy, [&calls]() -> Status {
    ++calls;
    return Status::DataLoss("torn");
  });
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
}

TEST_F(FaultTest, RetryGivesUpAfterMaxAttempts) {
  retry::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep = [](std::chrono::microseconds) {};
  int calls = 0;
  const Result<int> result =
      retry::Retry(policy, [&calls]() -> Result<int> {
        ++calls;
        return Status::IoError("disk on fire");
      });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST_F(FaultTest, BackoffIsDeterministicCappedAndJittered) {
  retry::RetryPolicy policy;
  policy.initial_backoff = std::chrono::microseconds(1000);
  policy.multiplier = 2.0;
  policy.max_backoff = std::chrono::microseconds(8000);
  for (std::size_t attempt = 1; attempt <= 12; ++attempt) {
    const auto backoff = policy.BackoffFor(attempt);
    EXPECT_EQ(backoff, policy.BackoffFor(attempt));  // stateless
    const double base =
        std::min(1000.0 * std::pow(2.0, static_cast<double>(attempt - 1)),
                 8000.0);
    EXPECT_GE(backoff.count(), static_cast<long long>(0.5 * base) - 1);
    EXPECT_LE(backoff.count(), static_cast<long long>(base));
  }
  retry::RetryPolicy reseeded = policy;
  reseeded.jitter_seed = policy.jitter_seed + 1;
  bool any_differs = false;
  for (std::size_t attempt = 1; attempt <= 12; ++attempt) {
    any_differs |= reseeded.BackoffFor(attempt) != policy.BackoffFor(attempt);
  }
  EXPECT_TRUE(any_differs);
}

// ------------------------------------------------------- store under fault

TEST_F(FaultTest, PutRetriesThroughTransientIoFault) {
  TempDir dir;
  auto store = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(fault::ArmFromSpec("store.put.io=once").ok());
  EXPECT_TRUE(store.value().Put("name", "payload").ok());
  EXPECT_EQ(fault::Point("store.put.io").injected(), 1u);
  const auto got = store.value().Get("name");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "payload");
}

TEST_F(FaultTest, GetRetriesThroughTransientIoFault) {
  TempDir dir;
  auto store = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().Put("name", "payload").ok());
  ASSERT_TRUE(fault::ArmFromSpec("store.get.io=once").ok());
  const auto got = store.value().Get("name");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "payload");
  EXPECT_EQ(fault::Point("store.get.io").injected(), 1u);
}

TEST_F(FaultTest, ExhaustedRetriesSurfaceTheTransientFailure) {
  TempDir dir;
  auto store = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(store.ok());
  retry::RetryPolicy fast;
  fast.max_attempts = 2;
  fast.sleep = [](std::chrono::microseconds) {};
  store.value().set_retry_policy(fast);
  ASSERT_TRUE(fault::ArmFromSpec("store.put.io=prob:1").ok());
  const Status status = store.value().Put("name", "payload");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_GE(fault::Point("store.put.io").injected(), 2u);  // both attempts
  EXPECT_FALSE(store.value().Contains("name"));
}

// The torn-write regression: a failure at any Put stage — including the
// fsync/rename window — must leave the previous snapshot byte-intact and
// no temp litter behind.
TEST_F(FaultTest, FailedPutStagesNeverTearThePreviousSnapshot) {
  const char* stages[] = {"store.put.io", "store.put.sync",
                          "store.put.rename"};
  for (const char* stage : stages) {
    TempDir dir;
    auto store = store::SnapshotStore::Open(dir.path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Put("name", "v1: the good bytes").ok());
    ASSERT_TRUE(
        fault::ArmFromSpec(std::string(stage) + "=prob:1,permanent").ok());
    const Status status = store.value().Put("name", "v2: never lands");
    EXPECT_EQ(status.code(), StatusCode::kInternal) << stage;
    fault::DisarmAll();

    const auto got = store.value().Get("name");
    ASSERT_TRUE(got.ok()) << stage;
    EXPECT_EQ(got.value(), "v1: the good bytes") << stage;
    for (const auto& entry : fs::directory_iterator(dir.path)) {
      EXPECT_NE(entry.path().extension(), ".tmp")
          << stage << " left temp litter: " << entry.path();
    }
  }
}

// A real (non-injected) rename failure: the target name is occupied by a
// non-empty directory, which rename(2) cannot replace. Distinct from the
// injected coverage above — this exercises the errno branch.
TEST_F(FaultTest, RealRenameFailureIsIoErrorAndRemovesTemp) {
  TempDir dir;
  auto store = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(store.ok());
  const std::string target = dir.path + "/blocked.snap";
  ASSERT_TRUE(fs::create_directory(target));
  {
    std::ofstream occupant(target + "/occupant");
    occupant << "x";
  }
  retry::RetryPolicy fast;
  fast.max_attempts = 2;
  fast.sleep = [](std::chrono::microseconds) {};
  store.value().set_retry_policy(fast);
  const Status status = store.value().Put("blocked", "payload");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    EXPECT_NE(entry.path().extension(), ".tmp");
  }
}

// --------------------------------------------------- registry degradation

TEST_F(FaultTest, FailedSpillKeepsTheSessionResidentAndRetriesLater) {
  TempDir dir;
  auto snapshots = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(snapshots.ok());
  store::SessionSpillStore spill(snapshots.value());

  api::SessionRegistryOptions options;
  options.max_bytes = 1;  // every second tenant forces a demotion
  options.spill = &spill;
  options.spill_retry_backoff = std::chrono::milliseconds(0);  // retry now
  api::SessionRegistry registry(options, nullptr);
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);

  auto a = registry.Open("a", spec);
  ASSERT_TRUE(a.ok());
  std::size_t cols = 0;
  const std::vector<double> rows = PerturbedRows(64, &cols);
  ASSERT_TRUE(a.value()->Ingest(data::RowBatch(rows.data(), 64, cols)).ok());

  // Opening "b" must demote "a" — but the demotion fails. The registry
  // keeps "a" resident (over budget) instead of destroying its evidence.
  ASSERT_TRUE(fault::ArmFromSpec("spill.demote=prob:1").ok());
  ASSERT_TRUE(registry.Open("b", spec).ok());
  api::SessionRegistry::Stats stats = registry.GetStats();
  EXPECT_EQ(stats.open_sessions, 2u);
  EXPECT_EQ(stats.spills, 0u);
  EXPECT_GE(stats.spill_failures, 1u);
  EXPECT_GE(stats.degraded_sessions, 1u);
  const auto resident = registry.Lookup("a");
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->record_count(), 64u);

  // Backend heals; the next touch of another name retries the demotion
  // (zero backoff) and the budget accounting lands exactly on "b".
  fault::DisarmAll();
  ASSERT_NE(registry.Lookup("b"), nullptr);
  stats = registry.GetStats();
  EXPECT_EQ(stats.open_sessions, 1u);
  EXPECT_EQ(stats.spilled_sessions, 1u);
  EXPECT_GE(stats.spills, 1u);
  EXPECT_GT(stats.spilled_bytes, 0u);
  // "b" still wears its degraded mark — the armed Lookup("a") above also
  // tried (and failed) to demote it. The mark clears only once "b"
  // itself spills cleanly.
  EXPECT_EQ(stats.degraded_sessions, 1u);

  // The spilled evidence survived the earlier failed attempt: "a"
  // re-admits with every record, which demotes "b" cleanly and clears
  // the last degraded mark.
  const auto readmitted = registry.Lookup("a");
  ASSERT_NE(readmitted, nullptr);
  EXPECT_EQ(readmitted->record_count(), 64u);
  EXPECT_EQ(registry.GetStats().degraded_sessions, 0u);
}

TEST_F(FaultTest, FailedSpillRespectsItsBackoffWindow) {
  TempDir dir;
  auto snapshots = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(snapshots.ok());
  store::SessionSpillStore spill(snapshots.value());

  auto now = std::chrono::steady_clock::now();
  api::SessionRegistryOptions options;
  options.max_bytes = 1;
  options.spill = &spill;
  options.spill_retry_backoff = std::chrono::milliseconds(100);
  options.clock = [&now] { return now; };
  api::SessionRegistry registry(options, nullptr);
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  ASSERT_TRUE(registry.Open("a", spec).ok());
  ASSERT_TRUE(fault::ArmFromSpec("spill.demote=prob:1").ok());
  ASSERT_TRUE(registry.Open("b", spec).ok());
  const std::uint64_t failures = registry.GetStats().spill_failures;
  EXPECT_GE(failures, 1u);

  // Still armed, but inside the backoff window: touches must not hammer
  // the failing backend with further attempts.
  ASSERT_NE(registry.Lookup("b"), nullptr);
  ASSERT_NE(registry.Lookup("b"), nullptr);
  EXPECT_EQ(registry.GetStats().spill_failures, failures);

  // Past the window the attempt is retried (and fails again).
  now += std::chrono::milliseconds(150);
  ASSERT_NE(registry.Lookup("b"), nullptr);
  EXPECT_GT(registry.GetStats().spill_failures, failures);
}

TEST_F(FaultTest, FailedReadmitSurfacesACleanStatusAndHealsOnRetry) {
  TempDir dir;
  auto snapshots = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(snapshots.ok());
  store::SessionSpillStore spill(snapshots.value());

  api::SessionRegistryOptions options;
  options.max_bytes = 1;
  options.spill = &spill;
  api::SessionRegistry registry(options, nullptr);
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  auto a = registry.Open("a", spec);
  ASSERT_TRUE(a.ok());
  std::size_t cols = 0;
  const std::vector<double> rows = PerturbedRows(32, &cols);
  ASSERT_TRUE(a.value()->Ingest(data::RowBatch(rows.data(), 32, cols)).ok());
  a = Status::Ok();  // drop our reference; the registry owns the session
  ASSERT_TRUE(registry.Open("b", spec).ok());  // demotes "a" to disk
  ASSERT_EQ(registry.GetStats().spilled_sessions, 1u);

  ASSERT_TRUE(fault::ArmFromSpec("registry.readmit=once").ok());
  const auto failed = registry.TryLookup("a");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  // Clean failure: the capture is intact, the name still taken, and the
  // next (disarmed) attempt re-admits every record.
  EXPECT_TRUE(spill.Contains("a"));
  const auto healed = registry.TryLookup("a");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.value()->record_count(), 32u);
}

TEST_F(FaultTest, CorruptCaptureSurfacesDecodeStatusAndCloseDiscardsIt) {
  TempDir dir;
  auto snapshots = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(snapshots.ok());
  store::SessionSpillStore spill(snapshots.value());
  ASSERT_TRUE(snapshots.value().Put("ghost", "not a session capture").ok());

  api::SessionRegistryOptions options;
  options.spill = &spill;
  api::SessionRegistry registry(options, nullptr);
  const auto looked = registry.TryLookup("ghost");
  EXPECT_FALSE(looked.ok());
  EXPECT_NE(looked.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(spill.Contains("ghost"));  // kept for inspection
  EXPECT_GE(registry.GetStats().spill_failures, 1u);

  EXPECT_TRUE(registry.Close("ghost"));
  EXPECT_FALSE(spill.Contains("ghost"));
  EXPECT_EQ(registry.TryLookup("ghost").status().code(),
            StatusCode::kNotFound);
}

// ------------------------------------------------ service admission chaos

TEST_F(FaultTest, EnqueueFaultShedsTheJobAsAStatus) {
  auto service = api::Service::Create(engine::BatchOptions{});
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(fault::ArmFromSpec("service.enqueue=once").ok());
  bool ran = false;
  api::JobHandle<int> shed = service.value()->Submit<int>([&ran] {
    ran = true;
    return Result<int>(1);
  });
  EXPECT_TRUE(shed.Poll());
  EXPECT_EQ(shed.Wait().status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(ran);
  // The next submission (disarmed `once`) runs normally.
  api::JobHandle<int> fine =
      service.value()->Submit<int>([] { return Result<int>(2); });
  ASSERT_TRUE(fine.Wait().ok());
  EXPECT_EQ(fine.Wait().value(), 2);
}

// ------------------------------------------- nothing aborts, everything
// returns: every fault point armed at p=1, full stack exercised

TEST_F(FaultTest, EveryPointArmedAtProbabilityOneNeverAborts) {
  TempDir dir;
  auto snapshots = store::SnapshotStore::Open(dir.path);
  ASSERT_TRUE(snapshots.ok());
  retry::RetryPolicy fast;
  fast.max_attempts = 2;
  fast.sleep = [](std::chrono::microseconds) {};
  snapshots.value().set_retry_policy(fast);
  store::SessionSpillStore spill(snapshots.value());

  ASSERT_TRUE(fault::ArmFromSpec(
                  "store.put.io=prob:1;store.put.sync=prob:1;"
                  "store.put.rename=prob:1;store.get.io=prob:1;"
                  "spill.demote=prob:1;registry.readmit=prob:1;"
                  "service.enqueue=prob:1")
                  .ok());

  // Store: both I/O directions fail as Status.
  EXPECT_FALSE(snapshots.value().Put("name", "payload").ok());
  EXPECT_FALSE(snapshots.value().Get("name").ok());

  // Registry over the failing tier: sessions still open, ingest, and
  // reconstruct; demotions degrade instead of destroying.
  api::SessionRegistryOptions options;
  options.max_bytes = 1;
  options.spill = &spill;
  options.spill_retry_backoff = std::chrono::milliseconds(0);
  api::SessionRegistry registry(options, nullptr);
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  auto a = registry.Open("a", spec);
  ASSERT_TRUE(a.ok());
  std::size_t cols = 0;
  const std::vector<double> rows = PerturbedRows(32, &cols);
  EXPECT_TRUE(
      a.value()->Ingest(data::RowBatch(rows.data(), 32, cols)).ok());
  EXPECT_TRUE(registry.Open("b", spec).ok());
  EXPECT_EQ(registry.GetStats().open_sessions, 2u);  // nothing was lost
  EXPECT_NE(registry.Lookup("a"), nullptr);
  EXPECT_TRUE(a.value()->ReconstructAll().ok());

  // Service: every submission sheds as a Status, none runs, none aborts.
  auto service = api::Service::Create(engine::BatchOptions{});
  ASSERT_TRUE(service.ok());
  for (int i = 0; i < 8; ++i) {
    api::JobHandle<int> handle =
        service.value()->Submit<int>([] { return Result<int>(1); });
    EXPECT_FALSE(handle.Wait().ok());
  }
  EXPECT_GT(fault::TotalInjected(), 0u);
}

// -------------------------------------------------- chaos determinism

// One simulated stream: two tenants under a one-byte budget, so every
// batch round-trips "a" through the spill tier (demote on the "b" touch,
// re-admit on the "a" touch). Returns the final reconstruction of "a".
Result<std::vector<reconstruct::Reconstruction>> RunSpillStream(
    std::size_t num_threads, const std::string& dir) {
  engine::BatchOptions batch;
  batch.num_threads = num_threads;
  PPDM_ASSIGN_OR_RETURN(const std::unique_ptr<api::Service> service,
                        api::Service::Create(batch));
  PPDM_ASSIGN_OR_RETURN(store::SnapshotStore snapshots,
                        store::SnapshotStore::Open(dir));
  store::SessionSpillStore spill(snapshots);
  api::SessionRegistryOptions options;
  options.max_bytes = 1;
  options.spill = &spill;
  api::SessionRegistry registry(options, service->pool());
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2);

  std::size_t cols = 0;
  const std::vector<double> rows = PerturbedRows(512, &cols);
  {
    PPDM_ASSIGN_OR_RETURN(const std::shared_ptr<api::DatasetSession> a,
                          registry.Open("a", spec));
    (void)a;
  }
  PPDM_ASSIGN_OR_RETURN(const std::shared_ptr<api::DatasetSession> b,
                        registry.Open("b", spec));
  (void)b;
  for (std::size_t offset = 0; offset < 512; offset += 64) {
    PPDM_ASSIGN_OR_RETURN(const std::shared_ptr<api::DatasetSession> a,
                          registry.TryLookup("a"));
    PPDM_RETURN_IF_ERROR(
        a->Ingest(data::RowBatch(rows.data() + offset * cols, 64, cols)));
    // Touching "b" demotes "a" (LRU under the one-byte budget): the next
    // iteration's TryLookup must re-admit it from disk.
    PPDM_RETURN_IF_ERROR(registry.TryLookup("b").status());
  }
  PPDM_ASSIGN_OR_RETURN(const std::shared_ptr<api::DatasetSession> a,
                        registry.TryLookup("a"));
  if (a->record_count() != 512u) {
    return Status::Internal("stream lost records");
  }
  return a->ReconstructAll();
}

// The acceptance property: a stream that *completes* under injected
// transient store faults (ridden through by the retry layer) must
// reconstruct byte-identically to the same stream with no faults — at
// every thread count. Faults may add latency, never drift.
TEST_F(FaultTest, CompletedChaosRunsAreByteIdenticalToNoFaultRuns) {
  for (const std::size_t threads : {0u, 1u, 2u, 8u}) {
    TempDir clean_dir;
    const auto baseline = RunSpillStream(threads, clean_dir.path);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    ASSERT_TRUE(fault::ArmFromSpec(
                    "store.put.io=every:3;store.get.io=every:4").ok());
    TempDir chaos_dir;
    const auto chaos = RunSpillStream(threads, chaos_dir.path);
    fault::DisarmAll();
    ASSERT_TRUE(chaos.ok())
        << "threads=" << threads << ": " << chaos.status().ToString();
    EXPECT_GT(fault::TotalInjected(), 0u);  // the run really was attacked

    ASSERT_EQ(baseline.value().size(), chaos.value().size());
    for (std::size_t attr = 0; attr < baseline.value().size(); ++attr) {
      EXPECT_TRUE(ReconstructionsIdentical(baseline.value()[attr],
                                           chaos.value()[attr]))
          << "threads=" << threads << " attribute=" << attr;
    }
  }
}

}  // namespace
}  // namespace ppdm
