// Tests for the session-oriented serving API: spec validation (invalid
// requests come back as kInvalidArgument, never a PPDM_CHECK abort),
// streaming ingest equivalence (Ingest in 1 batch == many batches ==
// batch FitParallel, byte for byte, at every thread count), EM warm-start
// behaviour, and the async job service (N concurrent submissions return
// exactly the sequential results).

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/service.h"
#include "api/session.h"
#include "api/spec.h"
#include "perturb/randomizer.h"
#include "reconstruct/reconstructor.h"
#include "synth/generator.h"

namespace ppdm::api {
namespace {

// ------------------------------------------------------------- validation

TEST(SpecValidationTest, DefaultSpecIsValid) {
  EXPECT_TRUE(Spec{}.Validate().ok());
}

TEST(SpecValidationTest, RejectsNegativePrivacyFraction) {
  Spec spec;
  spec.noise.privacy_fraction = -0.5;
  const Status s = spec.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsConfidenceOutsideOpenUnitInterval) {
  for (double confidence : {0.0, 1.0, 1.5, -0.1}) {
    Spec spec;
    spec.noise.confidence = confidence;
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument)
        << "confidence " << confidence;
  }
}

TEST(SpecValidationTest, RejectsNoneKindWithNonzeroFraction) {
  Spec spec;
  spec.noise.kind = perturb::NoiseKind::kNone;
  spec.noise.privacy_fraction = 1.0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsZeroIntervals) {
  Spec spec;
  spec.tree.intervals = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec.tree.intervals = 1;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsZeroEmIterations) {
  Spec spec;
  spec.tree.reconstruction.max_iterations = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsHoldoutFractionAtOne) {
  Spec spec;
  spec.tree.holdout_fraction = 1.0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsAbsurdThreadCount) {
  Spec spec;
  spec.engine.num_threads = 1u << 20;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsZeroRecords) {
  Spec spec;
  spec.train_records = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, ExperimentConfigRoundTrip) {
  Spec spec;
  spec.function = synth::Function::kF3;
  spec.train_records = 777;
  spec.seed = 42;
  spec.noise.kind = perturb::NoiseKind::kGaussian;
  spec.noise.privacy_fraction = 0.25;
  spec.tree.intervals = 12;
  spec.engine.num_threads = 2;
  spec.engine.shard_size = 128;

  const core::ExperimentConfig config = spec.ToExperimentConfig();
  EXPECT_EQ(config.train_records, 777u);
  EXPECT_EQ(config.noise, perturb::NoiseKind::kGaussian);
  EXPECT_DOUBLE_EQ(config.privacy_fraction, 0.25);
  EXPECT_EQ(config.tree.intervals, 12u);
  EXPECT_EQ(config.batch.num_threads, 2u);

  const Spec back = Spec::FromExperimentConfig(config);
  EXPECT_EQ(back.function, spec.function);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_DOUBLE_EQ(back.noise.privacy_fraction, 0.25);
  EXPECT_EQ(back.engine.shard_size, 128u);
  EXPECT_TRUE(back.Validate().ok());
}

TEST(SpecValidationTest, ValidateExperimentChecksConfigsDirectly) {
  core::ExperimentConfig config;
  EXPECT_TRUE(ValidateExperiment(config).ok());
  config.confidence = 1.0;
  EXPECT_EQ(ValidateExperiment(config).code(),
            StatusCode::kInvalidArgument);
  config.confidence = 0.95;
  config.tree.intervals = 0;
  EXPECT_EQ(ValidateExperiment(config).code(),
            StatusCode::kInvalidArgument);
  config.tree.intervals = 30;
  // The driver coerces privacy 0 to kNone itself, so that combination is
  // acceptable here, unlike ValidateNoise.
  config.privacy_fraction = 0.0;
  EXPECT_TRUE(ValidateExperiment(config).ok());
  config.privacy_fraction = -1.0;
  EXPECT_EQ(ValidateExperiment(config).code(),
            StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, ValidateDomainRejectsDegenerateRanges) {
  EXPECT_EQ(ValidateDomain(1.0, 1.0, 10).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateDomain(2.0, 1.0, 10).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateDomain(0.0, 1.0, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ValidateDomain(0.0, 1.0, 2).ok());
}

TEST(SessionSpecValidationTest, RejectsBadSpecsWithStatusNotAbort) {
  SessionSpec bad_domain;
  bad_domain.lo = 5.0;
  bad_domain.hi = 5.0;
  EXPECT_EQ(bad_domain.Validate().code(), StatusCode::kInvalidArgument);

  SessionSpec zero_intervals;
  zero_intervals.intervals = 0;
  EXPECT_EQ(zero_intervals.Validate().code(), StatusCode::kInvalidArgument);

  SessionSpec bad_privacy;
  bad_privacy.privacy_fraction = -1.0;
  EXPECT_EQ(bad_privacy.Validate().code(), StatusCode::kInvalidArgument);

  // Streaming cannot honour the per-sample exact EM path: the session
  // would silently diverge from FitParallel, so the spec is rejected.
  SessionSpec exact_path;
  exact_path.reconstruction.binned = false;
  EXPECT_EQ(exact_path.Validate().code(), StatusCode::kInvalidArgument);

  // Open surfaces the same status instead of crashing.
  const auto session = ReconstructionSession::Open(zero_intervals);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- streaming

// Perturbed benchmark data shared by the streaming tests.
struct StreamFixture {
  StreamFixture() {
    synth::GeneratorOptions gen;
    gen.num_records = 4000;
    gen.seed = 23;
    original = synth::Generate(gen);
    perturb::RandomizerOptions noise;
    noise.kind = perturb::NoiseKind::kUniform;
    noise.privacy_fraction = 1.0;
    noise.seed = 5;
    randomizer = std::make_unique<perturb::Randomizer>(original->schema(),
                                                       noise);
    perturbed = randomizer->Perturb(*original);
  }

  /// A session spec matching the salary attribute's noise calibration.
  SessionSpec SalarySpec(std::size_t intervals = 24) const {
    const data::FieldSpec& field =
        original->schema().Field(synth::kSalary);
    SessionSpec spec;
    spec.lo = field.lo;
    spec.hi = field.hi;
    spec.intervals = intervals;
    spec.noise = perturb::NoiseKind::kUniform;
    spec.privacy_fraction = 1.0;
    spec.confidence = 0.95;
    spec.shard_size = 512;
    return spec;
  }

  std::optional<data::Dataset> original;
  std::optional<data::Dataset> perturbed;
  std::unique_ptr<perturb::Randomizer> randomizer;
};

bool ReconstructionsIdentical(const reconstruct::Reconstruction& a,
                              const reconstruct::Reconstruction& b) {
  return a.masses == b.masses && a.iterations == b.iterations &&
         a.chi_square_trace == b.chi_square_trace &&
         a.log_likelihood_trace == b.log_likelihood_trace &&
         a.sample_count == b.sample_count;
}

// The acceptance property: Ingest in 1 batch vs. many batches vs. batch
// FitParallel produce identical masses, at 1, 2, and 8 threads (and with
// no pool at all).
TEST(ReconstructionSessionTest, IngestEquivalenceProperty) {
  const StreamFixture fx;
  const SessionSpec spec = fx.SalarySpec();
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);
  const reconstruct::Partition partition(spec.lo, spec.hi, spec.intervals);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), spec.reconstruction);

  // Batch reference: the engine's parallel fit, reference decomposition.
  const reconstruct::Reconstruction batch =
      reconstructor.FitParallel(column, partition, nullptr, spec.shard_size);
  EXPECT_GT(batch.iterations, 0u);

  for (std::size_t threads : {std::size_t{0}, std::size_t{1},
                              std::size_t{2}, std::size_t{8}}) {
    std::optional<engine::ThreadPool> pool;
    if (threads > 0) pool.emplace(threads);
    engine::ThreadPool* p = threads > 0 ? &*pool : nullptr;

    // One batch.
    auto one = ReconstructionSession::Open(spec, p);
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE(one.value()->Ingest(column).ok());
    const auto one_est = one.value()->Reconstruct();
    ASSERT_TRUE(one_est.ok());

    // Many uneven batches.
    auto many = ReconstructionSession::Open(spec, p);
    ASSERT_TRUE(many.ok());
    std::size_t offset = 0, step = 1;
    while (offset < column.size()) {
      const std::size_t take = std::min(step, column.size() - offset);
      ASSERT_TRUE(many.value()->Ingest(column.data() + offset, take).ok());
      offset += take;
      step = step * 3 + 1;  // 1, 4, 13, 40, ... uneven on purpose
    }
    EXPECT_EQ(many.value()->record_count(), column.size());
    const auto many_est = many.value()->Reconstruct();
    ASSERT_TRUE(many_est.ok());

    EXPECT_TRUE(ReconstructionsIdentical(batch, one_est.value()))
        << "one batch, threads " << threads;
    EXPECT_TRUE(ReconstructionsIdentical(batch, many_est.value()))
        << "many batches, threads " << threads;
    ASSERT_EQ(many_est.value().masses.size(), batch.masses.size());
    EXPECT_EQ(std::memcmp(many_est.value().masses.data(),
                          batch.masses.data(),
                          batch.masses.size() * sizeof(double)),
              0)
        << "threads " << threads;
  }
}

TEST(ReconstructionSessionTest, EmptySessionYieldsUniformPrior) {
  const StreamFixture fx;
  auto session = ReconstructionSession::Open(fx.SalarySpec(16));
  ASSERT_TRUE(session.ok());
  const auto estimate = session.value()->Reconstruct();
  ASSERT_TRUE(estimate.ok());
  ASSERT_EQ(estimate.value().masses.size(), 16u);
  for (double m : estimate.value().masses) EXPECT_DOUBLE_EQ(m, 1.0 / 16.0);
  EXPECT_EQ(estimate.value().sample_count, 0u);
}

TEST(ReconstructionSessionTest, RejectsNonFiniteValues) {
  const StreamFixture fx;
  auto session = ReconstructionSession::Open(fx.SalarySpec());
  ASSERT_TRUE(session.ok());
  const std::vector<double> bad{1.0, std::nan(""), 2.0};
  const Status s = session.value()->Ingest(bad);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.value()->record_count(), 0u);  // nothing folded
}

TEST(ReconstructionSessionTest, WarmStartRefreshConvergesFaster) {
  const StreamFixture fx;
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);
  auto session = ReconstructionSession::Open(fx.SalarySpec());
  ASSERT_TRUE(session.ok());

  const std::size_t half = column.size() / 2;
  ASSERT_TRUE(session.value()->Ingest(column.data(), half).ok());
  const auto first = session.value()->Reconstruct();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(session.value()->has_estimate());

  ASSERT_TRUE(
      session.value()->Ingest(column.data() + half, column.size() - half)
          .ok());
  const auto refreshed = session.value()->Reconstruct();
  ASSERT_TRUE(refreshed.ok());

  // Cold fit over the same full column, for comparison.
  const SessionSpec spec = fx.SalarySpec();
  const reconstruct::Partition partition(spec.lo, spec.hi, spec.intervals);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), spec.reconstruction);
  const reconstruct::Reconstruction cold =
      reconstructor.FitParallel(column, partition, nullptr, spec.shard_size);

  // The warm start begins near the answer: it must not iterate longer
  // than the cold fit, and must land on (essentially) the same estimate.
  EXPECT_LE(refreshed.value().iterations, cold.iterations);
  ASSERT_EQ(refreshed.value().masses.size(), cold.masses.size());
  for (std::size_t k = 0; k < cold.masses.size(); ++k) {
    EXPECT_NEAR(refreshed.value().masses[k], cold.masses[k], 5e-3);
  }
}

TEST(ReconstructionSessionTest, ColdModeStaysByteIdenticalAcrossRefreshes) {
  const StreamFixture fx;
  SessionSpec spec = fx.SalarySpec();
  spec.warm_start = false;
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);
  auto session = ReconstructionSession::Open(spec);
  ASSERT_TRUE(session.ok());

  const reconstruct::Partition partition(spec.lo, spec.hi, spec.intervals);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), spec.reconstruction);

  const std::size_t half = column.size() / 2;
  ASSERT_TRUE(session.value()->Ingest(column.data(), half).ok());
  ASSERT_TRUE(session.value()->Reconstruct().ok());  // does not perturb later fits
  ASSERT_TRUE(
      session.value()->Ingest(column.data() + half, column.size() - half)
          .ok());
  const auto second = session.value()->Reconstruct();
  ASSERT_TRUE(second.ok());

  const reconstruct::Reconstruction batch =
      reconstructor.FitParallel(column, partition, nullptr, spec.shard_size);
  EXPECT_TRUE(ReconstructionsIdentical(batch, second.value()));
}

TEST(ReconstructionSessionTest, NoNoiseSessionIsExactHistogram) {
  SessionSpec spec;
  spec.lo = 0.0;
  spec.hi = 1.0;
  spec.intervals = 4;
  spec.noise = perturb::NoiseKind::kNone;
  spec.privacy_fraction = 0.0;
  auto session = ReconstructionSession::Open(spec);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      session.value()->Ingest({0.1, 0.1, 0.4, 0.6, 0.6, 0.6, 0.9, 0.9}).ok());
  const auto estimate = session.value()->Reconstruct();
  ASSERT_TRUE(estimate.ok());
  const std::vector<double> expected{0.25, 0.125, 0.375, 0.25};
  EXPECT_EQ(estimate.value().masses, expected);
  EXPECT_EQ(estimate.value().sample_count, 8u);
}

// ---------------------------------------------------------------- service

TEST(ServiceTest, CreateRejectsInvalidEngineOptions) {
  engine::BatchOptions options;
  options.num_threads = 1u << 20;
  const auto service = Service::Create(options);
  EXPECT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceTest, SynchronousServiceCompletesInline) {
  auto service = Service::Create(engine::BatchOptions{});  // 0 threads
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service.value()->pool(), nullptr);
  JobHandle<int> handle = service.value()->Submit<int>(
      [] { return Result<int>(41 + 1); });
  EXPECT_TRUE(handle.Poll());
  ASSERT_TRUE(handle.Wait().ok());
  EXPECT_EQ(handle.Wait().value(), 42);
}

TEST(ServiceTest, ErrorsTravelThroughResult) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  JobHandle<int> handle = service.value()->Submit<int>([]() -> Result<int> {
    return Status::FailedPrecondition("model not loaded");
  });
  const Result<int> result = handle.Wait();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, OnCompleteFiresExactlyOnce) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  std::atomic<int> fired{0};
  JobHandle<int> handle =
      service.value()->Submit<int>([] { return Result<int>(7); });
  handle.OnComplete([&fired](const Result<int>& r) {
    if (r.ok() && r.value() == 7) ++fired;
  });
  // Wait() returning does not order against the callback (the worker may
  // still be inside it); synchronize on the callback's own effect.
  handle.Wait();
  while (fired.load() == 0) std::this_thread::yield();
  EXPECT_EQ(fired.load(), 1);

  // Registering after completion fires immediately.
  std::atomic<int> late{0};
  handle.OnComplete([&late](const Result<int>&) { ++late; });
  EXPECT_EQ(late.load(), 1);
}

TEST(ServiceTest, MultipleOnCompleteRegistrationsAllFire) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  std::atomic<bool> release{false};
  JobHandle<int> handle =
      service.value()->Submit<int>([&release]() -> Result<int> {
        while (!release.load()) std::this_thread::yield();
        return 5;
      });
  // Both registrations happen strictly before completion (the job is
  // gated on `release`), so they must chain, not overwrite.
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  JobHandle<int> copy = handle;
  handle.OnComplete([&first](const Result<int>& r) {
    if (r.ok()) first += r.value();
  });
  copy.OnComplete([&second](const Result<int>& r) {
    if (r.ok()) second += r.value();
  });
  release = true;
  handle.Wait();
  while (first.load() == 0 || second.load() == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(first.load(), 5);
  EXPECT_EQ(second.load(), 5);
}

// The acceptance property: N concurrent reconstruction jobs return results
// identical to running the same jobs sequentially.
TEST(ServiceTest, ConcurrentJobsMatchSequentialExecution) {
  const StreamFixture fx;
  engine::BatchOptions options;
  options.num_threads = 4;
  options.shard_size = 512;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());

  const std::vector<std::size_t> columns{
      synth::kSalary, synth::kCommission, synth::kAge, synth::kHvalue,
      synth::kSalary, synth::kAge};

  // Sequential reference.
  std::vector<reconstruct::Reconstruction> sequential;
  for (std::size_t col : columns) {
    const data::FieldSpec& field = fx.original->schema().Field(col);
    const reconstruct::Partition partition(field.lo, field.hi, 20);
    const reconstruct::BayesReconstructor reconstructor(
        fx.randomizer->ModelFor(col), {});
    sequential.push_back(reconstructor.FitParallel(
        fx.perturbed->Column(col), partition, nullptr, options.shard_size));
  }

  // Concurrent submission of the same jobs.
  std::vector<JobHandle<reconstruct::Reconstruction>> handles;
  for (std::size_t col : columns) {
    handles.push_back(service.value()->Submit<reconstruct::Reconstruction>(
        [&fx, col, &options]() -> Result<reconstruct::Reconstruction> {
          const data::FieldSpec& field = fx.original->schema().Field(col);
          const reconstruct::Partition partition(field.lo, field.hi, 20);
          const reconstruct::BayesReconstructor reconstructor(
              fx.randomizer->ModelFor(col), {});
          return reconstructor.FitParallel(fx.perturbed->Column(col),
                                           partition, nullptr,
                                           options.shard_size);
        }));
  }
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const Result<reconstruct::Reconstruction> r = handles[j].Wait();
    ASSERT_TRUE(r.ok()) << "job " << j;
    EXPECT_TRUE(ReconstructionsIdentical(sequential[j], r.value()))
        << "job " << j;
  }
}

TEST(ServiceTest, StreamingSessionDrivenByAsyncJobs) {
  // A miniature server loop: ingest jobs and a final reconstruct job all
  // flow through Submit; the estimate matches the batch fit bit for bit.
  const StreamFixture fx;
  engine::BatchOptions options;
  options.num_threads = 4;
  options.shard_size = 512;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());

  const SessionSpec spec = fx.SalarySpec();
  auto opened = service.value()->OpenSession(spec);
  ASSERT_TRUE(opened.ok());
  ReconstructionSession* session = opened.value().get();
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);

  std::vector<JobHandle<bool>> ingests;
  constexpr std::size_t kBatch = 700;
  for (std::size_t offset = 0; offset < column.size(); offset += kBatch) {
    const std::size_t take = std::min(kBatch, column.size() - offset);
    ingests.push_back(service.value()->Submit<bool>(
        [session, &column, offset, take]() -> Result<bool> {
          PPDM_RETURN_IF_ERROR(session->Ingest(column.data() + offset, take));
          return true;
        }));
  }
  for (auto& h : ingests) ASSERT_TRUE(h.Wait().ok());
  EXPECT_EQ(session->record_count(), column.size());

  JobHandle<reconstruct::Reconstruction> fit =
      service.value()->Submit<reconstruct::Reconstruction>(
          [session]() -> Result<reconstruct::Reconstruction> {
            return session->Reconstruct();
          });
  const auto streamed = fit.Wait();
  ASSERT_TRUE(streamed.ok());

  const reconstruct::Partition partition(spec.lo, spec.hi, spec.intervals);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), spec.reconstruction);
  const reconstruct::Reconstruction batch =
      reconstructor.FitParallel(column, partition, nullptr, spec.shard_size);
  EXPECT_TRUE(ReconstructionsIdentical(batch, streamed.value()));
}

// ------------------------------------------------------------- experiment

TEST(RunExperimentTest, RejectsInvalidSpec) {
  Spec spec;
  spec.noise.confidence = 2.0;
  const auto result = RunExperiment(spec, {tree::TrainingMode::kByClass});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RunExperimentTest, RejectsEmptyModeList) {
  const auto result = RunExperiment(Spec{}, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RunExperimentTest, MatchesDirectCoreDriver) {
  Spec spec;
  spec.train_records = 1500;
  spec.test_records = 400;
  spec.seed = 9;
  spec.tree.intervals = 10;
  const auto via_api =
      RunExperiment(spec, {tree::TrainingMode::kRandomized});
  ASSERT_TRUE(via_api.ok());
  const std::vector<core::ModeResult> direct = core::RunModes(
      spec.ToExperimentConfig(), {tree::TrainingMode::kRandomized});
  ASSERT_EQ(via_api.value().size(), 1u);
  EXPECT_DOUBLE_EQ(via_api.value()[0].accuracy, direct[0].accuracy);
  EXPECT_EQ(via_api.value()[0].tree_nodes, direct[0].tree_nodes);
}

}  // namespace
}  // namespace ppdm::api
