// Tests for the session-oriented serving API: spec validation (invalid
// requests come back as kInvalidArgument, never a PPDM_CHECK abort),
// streaming ingest equivalence (Ingest in 1 batch == many batches ==
// batch FitParallel, byte for byte, at every thread count), EM warm-start
// behaviour, and the async job service (N concurrent submissions return
// exactly the sequential results).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/attribute_state.h"
#include "api/dataset_session.h"
#include "api/registry.h"
#include "api/service.h"
#include "api/session.h"
#include "api/spec.h"
#include "data/row_batch.h"
#include "perturb/randomizer.h"
#include "reconstruct/reconstructor.h"
#include "synth/generator.h"

namespace ppdm::api {
namespace {

// ------------------------------------------------------------- validation

TEST(SpecValidationTest, DefaultSpecIsValid) {
  EXPECT_TRUE(Spec{}.Validate().ok());
}

TEST(SpecValidationTest, RejectsNegativePrivacyFraction) {
  Spec spec;
  spec.noise.privacy_fraction = -0.5;
  const Status s = spec.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsConfidenceOutsideOpenUnitInterval) {
  for (double confidence : {0.0, 1.0, 1.5, -0.1}) {
    Spec spec;
    spec.noise.confidence = confidence;
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument)
        << "confidence " << confidence;
  }
}

TEST(SpecValidationTest, RejectsNoneKindWithNonzeroFraction) {
  Spec spec;
  spec.noise.kind = perturb::NoiseKind::kNone;
  spec.noise.privacy_fraction = 1.0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsZeroIntervals) {
  Spec spec;
  spec.tree.intervals = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
  spec.tree.intervals = 1;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsZeroEmIterations) {
  Spec spec;
  spec.tree.reconstruction.max_iterations = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsHoldoutFractionAtOne) {
  Spec spec;
  spec.tree.holdout_fraction = 1.0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsAbsurdThreadCount) {
  Spec spec;
  spec.engine.num_threads = 1u << 20;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, RejectsZeroRecords) {
  Spec spec;
  spec.train_records = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, ExperimentConfigRoundTrip) {
  Spec spec;
  spec.function = synth::Function::kF3;
  spec.train_records = 777;
  spec.seed = 42;
  spec.noise.kind = perturb::NoiseKind::kGaussian;
  spec.noise.privacy_fraction = 0.25;
  spec.tree.intervals = 12;
  spec.engine.num_threads = 2;
  spec.engine.shard_size = 128;

  const core::ExperimentConfig config = spec.ToExperimentConfig();
  EXPECT_EQ(config.train_records, 777u);
  EXPECT_EQ(config.noise, perturb::NoiseKind::kGaussian);
  EXPECT_DOUBLE_EQ(config.privacy_fraction, 0.25);
  EXPECT_EQ(config.tree.intervals, 12u);
  EXPECT_EQ(config.batch.num_threads, 2u);

  const Spec back = Spec::FromExperimentConfig(config);
  EXPECT_EQ(back.function, spec.function);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_DOUBLE_EQ(back.noise.privacy_fraction, 0.25);
  EXPECT_EQ(back.engine.shard_size, 128u);
  EXPECT_TRUE(back.Validate().ok());
}

TEST(SpecValidationTest, ValidateExperimentChecksConfigsDirectly) {
  core::ExperimentConfig config;
  EXPECT_TRUE(ValidateExperiment(config).ok());
  config.confidence = 1.0;
  EXPECT_EQ(ValidateExperiment(config).code(),
            StatusCode::kInvalidArgument);
  config.confidence = 0.95;
  config.tree.intervals = 0;
  EXPECT_EQ(ValidateExperiment(config).code(),
            StatusCode::kInvalidArgument);
  config.tree.intervals = 30;
  // The driver coerces privacy 0 to kNone itself, so that combination is
  // acceptable here, unlike ValidateNoise.
  config.privacy_fraction = 0.0;
  EXPECT_TRUE(ValidateExperiment(config).ok());
  config.privacy_fraction = -1.0;
  EXPECT_EQ(ValidateExperiment(config).code(),
            StatusCode::kInvalidArgument);
}

TEST(SpecValidationTest, ValidateDomainRejectsDegenerateRanges) {
  EXPECT_EQ(ValidateDomain(1.0, 1.0, 10).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateDomain(2.0, 1.0, 10).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateDomain(0.0, 1.0, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ValidateDomain(0.0, 1.0, 2).ok());
}

TEST(SessionSpecValidationTest, RejectsBadSpecsWithStatusNotAbort) {
  SessionSpec bad_domain;
  bad_domain.lo = 5.0;
  bad_domain.hi = 5.0;
  EXPECT_EQ(bad_domain.Validate().code(), StatusCode::kInvalidArgument);

  SessionSpec zero_intervals;
  zero_intervals.intervals = 0;
  EXPECT_EQ(zero_intervals.Validate().code(), StatusCode::kInvalidArgument);

  SessionSpec bad_privacy;
  bad_privacy.privacy_fraction = -1.0;
  EXPECT_EQ(bad_privacy.Validate().code(), StatusCode::kInvalidArgument);

  // Streaming cannot honour the per-sample exact EM path: the session
  // would silently diverge from FitParallel, so the spec is rejected.
  SessionSpec exact_path;
  exact_path.reconstruction.binned = false;
  EXPECT_EQ(exact_path.Validate().code(), StatusCode::kInvalidArgument);

  // Open surfaces the same status instead of crashing.
  const auto session = ReconstructionSession::Open(zero_intervals);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- streaming

// Perturbed benchmark data shared by the streaming tests.
struct StreamFixture {
  StreamFixture() {
    synth::GeneratorOptions gen;
    gen.num_records = 4000;
    gen.seed = 23;
    original = synth::Generate(gen);
    perturb::RandomizerOptions noise;
    noise.kind = perturb::NoiseKind::kUniform;
    noise.privacy_fraction = 1.0;
    noise.seed = 5;
    randomizer = std::make_unique<perturb::Randomizer>(original->schema(),
                                                       noise);
    perturbed = randomizer->Perturb(*original);
  }

  /// A session spec matching the salary attribute's noise calibration.
  SessionSpec SalarySpec(std::size_t intervals = 24) const {
    const data::FieldSpec& field =
        original->schema().Field(synth::kSalary);
    SessionSpec spec;
    spec.lo = field.lo;
    spec.hi = field.hi;
    spec.intervals = intervals;
    spec.noise = perturb::NoiseKind::kUniform;
    spec.privacy_fraction = 1.0;
    spec.confidence = 0.95;
    spec.shard_size = 512;
    return spec;
  }

  std::optional<data::Dataset> original;
  std::optional<data::Dataset> perturbed;
  std::unique_ptr<perturb::Randomizer> randomizer;
};

bool ReconstructionsIdentical(const reconstruct::Reconstruction& a,
                              const reconstruct::Reconstruction& b) {
  return a.masses == b.masses && a.iterations == b.iterations &&
         a.chi_square_trace == b.chi_square_trace &&
         a.log_likelihood_trace == b.log_likelihood_trace &&
         a.sample_count == b.sample_count;
}

TEST(AttributeStateTest, KernelCacheHitReusesTableMissRebuilds) {
  const perturb::NoiseModel noise = perturb::NoiseModel::Uniform(0.25);
  const AttributeState state(0.0, 1.0, 12, noise, {});
  const auto built = state.ResolveKernelTable(nullptr, nullptr);
  ASSERT_NE(built, nullptr);
  EXPECT_TRUE(built->Matches(state.noise_model(), state.partition(),
                             state.layout()));
  // Matching cache: the same table comes back — the rebuild is skipped.
  const auto hit = state.ResolveKernelTable(built, nullptr);
  EXPECT_EQ(hit.get(), built.get());
  // A table built for a different layout is stale: rebuilt, never reused.
  const AttributeState other(0.0, 1.0, 24, noise, {});
  const auto rebuilt = other.ResolveKernelTable(built, nullptr);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt.get(), built.get());
  EXPECT_TRUE(rebuilt->Matches(other.noise_model(), other.partition(),
                               other.layout()));
}

// The acceptance property: Ingest in 1 batch vs. many batches vs. batch
// FitParallel produce identical masses, at 1, 2, and 8 threads (and with
// no pool at all).
TEST(ReconstructionSessionTest, IngestEquivalenceProperty) {
  const StreamFixture fx;
  const SessionSpec spec = fx.SalarySpec();
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);
  const reconstruct::Partition partition(spec.lo, spec.hi, spec.intervals);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), spec.reconstruction);

  // Batch reference: the engine's parallel fit, reference decomposition.
  const reconstruct::Reconstruction batch =
      reconstructor.FitParallel(column, partition, nullptr, spec.shard_size);
  EXPECT_GT(batch.iterations, 0u);

  for (std::size_t threads : {std::size_t{0}, std::size_t{1},
                              std::size_t{2}, std::size_t{8}}) {
    std::optional<engine::ThreadPool> pool;
    if (threads > 0) pool.emplace(threads);
    engine::ThreadPool* p = threads > 0 ? &*pool : nullptr;

    // One batch.
    auto one = ReconstructionSession::Open(spec, p);
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE(one.value()->Ingest(column).ok());
    const auto one_est = one.value()->Reconstruct();
    ASSERT_TRUE(one_est.ok());

    // Many uneven batches.
    auto many = ReconstructionSession::Open(spec, p);
    ASSERT_TRUE(many.ok());
    std::size_t offset = 0, step = 1;
    while (offset < column.size()) {
      const std::size_t take = std::min(step, column.size() - offset);
      ASSERT_TRUE(many.value()->Ingest(column.data() + offset, take).ok());
      offset += take;
      step = step * 3 + 1;  // 1, 4, 13, 40, ... uneven on purpose
    }
    EXPECT_EQ(many.value()->record_count(), column.size());
    const auto many_est = many.value()->Reconstruct();
    ASSERT_TRUE(many_est.ok());

    EXPECT_TRUE(ReconstructionsIdentical(batch, one_est.value()))
        << "one batch, threads " << threads;
    EXPECT_TRUE(ReconstructionsIdentical(batch, many_est.value()))
        << "many batches, threads " << threads;
    ASSERT_EQ(many_est.value().masses.size(), batch.masses.size());
    EXPECT_EQ(std::memcmp(many_est.value().masses.data(),
                          batch.masses.data(),
                          batch.masses.size() * sizeof(double)),
              0)
        << "threads " << threads;
  }
}

TEST(ReconstructionSessionTest, EmptySessionYieldsUniformPrior) {
  const StreamFixture fx;
  auto session = ReconstructionSession::Open(fx.SalarySpec(16));
  ASSERT_TRUE(session.ok());
  const auto estimate = session.value()->Reconstruct();
  ASSERT_TRUE(estimate.ok());
  ASSERT_EQ(estimate.value().masses.size(), 16u);
  for (double m : estimate.value().masses) EXPECT_DOUBLE_EQ(m, 1.0 / 16.0);
  EXPECT_EQ(estimate.value().sample_count, 0u);
}

TEST(ReconstructionSessionTest, RejectsNonFiniteValues) {
  const StreamFixture fx;
  auto session = ReconstructionSession::Open(fx.SalarySpec());
  ASSERT_TRUE(session.ok());
  const std::vector<double> bad{1.0, std::nan(""), 2.0};
  const Status s = session.value()->Ingest(bad);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.value()->record_count(), 0u);  // nothing folded
}

TEST(ReconstructionSessionTest, WarmStartRefreshConvergesFaster) {
  const StreamFixture fx;
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);
  auto session = ReconstructionSession::Open(fx.SalarySpec());
  ASSERT_TRUE(session.ok());

  const std::size_t half = column.size() / 2;
  ASSERT_TRUE(session.value()->Ingest(column.data(), half).ok());
  const auto first = session.value()->Reconstruct();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(session.value()->has_estimate());

  ASSERT_TRUE(
      session.value()->Ingest(column.data() + half, column.size() - half)
          .ok());
  const auto refreshed = session.value()->Reconstruct();
  ASSERT_TRUE(refreshed.ok());

  // Cold fit over the same full column, for comparison.
  const SessionSpec spec = fx.SalarySpec();
  const reconstruct::Partition partition(spec.lo, spec.hi, spec.intervals);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), spec.reconstruction);
  const reconstruct::Reconstruction cold =
      reconstructor.FitParallel(column, partition, nullptr, spec.shard_size);

  // The warm start begins near the answer: it must not iterate longer
  // than the cold fit, and must land on (essentially) the same estimate.
  EXPECT_LE(refreshed.value().iterations, cold.iterations);
  ASSERT_EQ(refreshed.value().masses.size(), cold.masses.size());
  for (std::size_t k = 0; k < cold.masses.size(); ++k) {
    EXPECT_NEAR(refreshed.value().masses[k], cold.masses[k], 5e-3);
  }
}

TEST(ReconstructionSessionTest, ColdModeStaysByteIdenticalAcrossRefreshes) {
  const StreamFixture fx;
  SessionSpec spec = fx.SalarySpec();
  spec.warm_start = false;
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);
  auto session = ReconstructionSession::Open(spec);
  ASSERT_TRUE(session.ok());

  const reconstruct::Partition partition(spec.lo, spec.hi, spec.intervals);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), spec.reconstruction);

  const std::size_t half = column.size() / 2;
  ASSERT_TRUE(session.value()->Ingest(column.data(), half).ok());
  ASSERT_TRUE(session.value()->Reconstruct().ok());  // does not perturb later fits
  ASSERT_TRUE(
      session.value()->Ingest(column.data() + half, column.size() - half)
          .ok());
  const auto second = session.value()->Reconstruct();
  ASSERT_TRUE(second.ok());

  const reconstruct::Reconstruction batch =
      reconstructor.FitParallel(column, partition, nullptr, spec.shard_size);
  EXPECT_TRUE(ReconstructionsIdentical(batch, second.value()));
}

TEST(ReconstructionSessionTest, NoNoiseSessionIsExactHistogram) {
  SessionSpec spec;
  spec.lo = 0.0;
  spec.hi = 1.0;
  spec.intervals = 4;
  spec.noise = perturb::NoiseKind::kNone;
  spec.privacy_fraction = 0.0;
  auto session = ReconstructionSession::Open(spec);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      session.value()->Ingest({0.1, 0.1, 0.4, 0.6, 0.6, 0.6, 0.9, 0.9}).ok());
  const auto estimate = session.value()->Reconstruct();
  ASSERT_TRUE(estimate.ok());
  const std::vector<double> expected{0.25, 0.125, 0.375, 0.25};
  EXPECT_EQ(estimate.value().masses, expected);
  EXPECT_EQ(estimate.value().sample_count, 8u);
}

// -------------------------------------------------------- dataset session

/// A dataset-session spec over the first `num_attrs` benchmark columns.
DatasetSessionSpec BenchmarkDatasetSpec(std::size_t num_attrs,
                                        std::size_t intervals = 16) {
  DatasetSessionSpec spec;
  spec.schema = synth::BenchmarkSchema();
  for (std::size_t column = 0; column < num_attrs; ++column) {
    AttributeSpec attr;
    attr.column = column;
    attr.intervals = intervals;
    attr.noise = perturb::NoiseKind::kUniform;
    attr.privacy_fraction = 1.0;
    spec.attributes.push_back(attr);
  }
  spec.shard_size = 512;
  return spec;
}

/// The StreamFixture's perturbed table flattened row-major (no labels).
std::vector<double> FlattenRows(const data::Dataset& dataset) {
  std::vector<double> rows(dataset.NumRows() * dataset.NumCols());
  for (std::size_t c = 0; c < dataset.NumCols(); ++c) {
    const std::vector<double>& column = dataset.Column(c);
    for (std::size_t r = 0; r < dataset.NumRows(); ++r) {
      rows[r * dataset.NumCols() + c] = column[r];
    }
  }
  return rows;
}

TEST(DatasetSessionSpecValidationTest, RejectsBadSpecsWithStatusNotAbort) {
  DatasetSessionSpec no_attrs = BenchmarkDatasetSpec(0);
  EXPECT_EQ(no_attrs.Validate().code(), StatusCode::kInvalidArgument);

  DatasetSessionSpec bad_column = BenchmarkDatasetSpec(2);
  bad_column.attributes[1].column = 99;
  EXPECT_EQ(bad_column.Validate().code(), StatusCode::kInvalidArgument);

  DatasetSessionSpec duplicate = BenchmarkDatasetSpec(2);
  duplicate.attributes[1].column = duplicate.attributes[0].column;
  EXPECT_EQ(duplicate.Validate().code(), StatusCode::kInvalidArgument);

  DatasetSessionSpec zero_intervals = BenchmarkDatasetSpec(2);
  zero_intervals.attributes[1].intervals = 0;
  EXPECT_EQ(zero_intervals.Validate().code(),
            StatusCode::kInvalidArgument);

  DatasetSessionSpec bad_privacy = BenchmarkDatasetSpec(1);
  bad_privacy.attributes[0].privacy_fraction = -1.0;
  EXPECT_EQ(bad_privacy.Validate().code(), StatusCode::kInvalidArgument);

  // Streaming cannot honour the per-sample exact EM path (see the
  // SessionSpec test of the same name).
  DatasetSessionSpec exact_path = BenchmarkDatasetSpec(1);
  exact_path.attributes[0].reconstruction.binned = false;
  EXPECT_EQ(exact_path.Validate().code(), StatusCode::kInvalidArgument);

  // Open surfaces the same status instead of crashing.
  const auto session = DatasetSession::Open(bad_column);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(BenchmarkDatasetSpec(4).Validate().ok());
}

// The acceptance property: a dataset session ingesting record batches is
// byte-identical to N independent per-attribute sessions ingesting the
// same columns — at 0, 1, 2, and 8 threads, for an uneven batching.
TEST(DatasetSessionTest, ReconstructAllMatchesIndependentSessions) {
  const StreamFixture fx;
  const std::size_t num_attrs = 4;
  const DatasetSessionSpec spec = BenchmarkDatasetSpec(num_attrs);
  const std::vector<double> rows = FlattenRows(*fx.perturbed);
  const std::size_t num_rows = fx.perturbed->NumRows();
  const data::RowBatch all_rows(rows.data(), num_rows,
                                fx.perturbed->NumCols());

  for (std::size_t threads : {std::size_t{0}, std::size_t{1},
                              std::size_t{2}, std::size_t{8}}) {
    std::optional<engine::ThreadPool> pool;
    if (threads > 0) pool.emplace(threads);
    engine::ThreadPool* p = threads > 0 ? &*pool : nullptr;

    // Dataset path: uneven record batches, one ingest pass each.
    auto dataset_session = DatasetSession::Open(spec, p);
    ASSERT_TRUE(dataset_session.ok());
    std::size_t offset = 0, step = 1;
    while (offset < num_rows) {
      const std::size_t take = std::min(step, num_rows - offset);
      ASSERT_TRUE(
          dataset_session.value()->Ingest(all_rows.Slice(offset, take)).ok());
      offset += take;
      step = step * 3 + 1;
    }
    EXPECT_EQ(dataset_session.value()->record_count(), num_rows);
    // Two refreshes: the second exercises the warm-started fan-out.
    ASSERT_TRUE(dataset_session.value()->ReconstructAll().ok());
    const auto estimates = dataset_session.value()->ReconstructAll();
    ASSERT_TRUE(estimates.ok());
    ASSERT_EQ(estimates.value().size(), num_attrs);

    // Reference: independent per-attribute sessions over the columns,
    // with the same double-refresh history.
    for (std::size_t a = 0; a < num_attrs; ++a) {
      auto solo = ReconstructionSession::Open(spec.AttributeSession(a), p);
      ASSERT_TRUE(solo.ok());
      ASSERT_TRUE(solo.value()->Ingest(fx.perturbed->Column(a)).ok());
      ASSERT_TRUE(solo.value()->Reconstruct().ok());
      const auto independent = solo.value()->Reconstruct();
      ASSERT_TRUE(independent.ok());
      EXPECT_TRUE(ReconstructionsIdentical(independent.value(),
                                           estimates.value()[a]))
          << "attribute " << a << ", threads " << threads;
      ASSERT_EQ(estimates.value()[a].masses.size(),
                independent.value().masses.size());
      EXPECT_EQ(std::memcmp(estimates.value()[a].masses.data(),
                            independent.value().masses.data(),
                            independent.value().masses.size() *
                                sizeof(double)),
                0)
          << "attribute " << a << ", threads " << threads;
    }
  }
}

TEST(DatasetSessionTest, SinglePassIngestRejectsNonFiniteAtomically) {
  const DatasetSessionSpec spec = BenchmarkDatasetSpec(2);
  auto session = DatasetSession::Open(spec);
  ASSERT_TRUE(session.ok());

  const std::size_t cols = spec.schema.NumFields();
  std::vector<double> rows(2 * cols, 30000.0);
  rows[1 * cols + 1] = std::nan("");  // tracked column 1, row 1
  const Status s = session.value()->Ingest(
      data::RowBatch(rows.data(), 2, cols));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.value()->record_count(), 0u);  // nothing folded

  // A non-finite value in an *untracked* column is never read: the
  // single pass touches tracked columns only.
  rows[1 * cols + 1] = 30000.0;
  rows[0 * cols + 7] = std::nan("");  // column 7 is not tracked
  EXPECT_TRUE(
      session.value()->Ingest(data::RowBatch(rows.data(), 2, cols)).ok());
  EXPECT_EQ(session.value()->record_count(), 2u);
}

TEST(DatasetSessionTest, RejectsWrongWidthBatch) {
  auto session = DatasetSession::Open(BenchmarkDatasetSpec(2));
  ASSERT_TRUE(session.ok());
  std::vector<double> rows(4, 30000.0);
  EXPECT_EQ(session.value()->Ingest(data::RowBatch(rows.data(), 2, 2)).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetSessionTest, ApproxMemoryBytesGrowsWithAttributes) {
  auto one = DatasetSession::Open(BenchmarkDatasetSpec(1));
  auto four = DatasetSession::Open(BenchmarkDatasetSpec(4));
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  const std::size_t one_bytes = one.value()->ApproxMemoryBytes();
  const std::size_t four_bytes = four.value()->ApproxMemoryBytes();
  // Four attribute states must account to (well over) one's counts: each
  // state holds at least its bin-count table.
  EXPECT_GT(one_bytes, sizeof(DatasetSession));
  EXPECT_GT(four_bytes, one_bytes + 2 * 16 * sizeof(std::uint64_t));
}

// ---------------------------------------------------------------- registry

TEST(SessionRegistryTest, OpenLookupCloseLifecycle) {
  SessionRegistry registry({});
  auto opened = registry.Open("alpha", BenchmarkDatasetSpec(2));
  ASSERT_TRUE(opened.ok());

  // Opening the same name again is a precondition failure, not a crash.
  EXPECT_EQ(registry.Open("alpha", BenchmarkDatasetSpec(1)).status().code(),
            StatusCode::kFailedPrecondition);

  const std::shared_ptr<DatasetSession> found = registry.Lookup("alpha");
  EXPECT_EQ(found.get(), opened.value().get());
  EXPECT_EQ(registry.Lookup("beta"), nullptr);

  SessionRegistry::Stats stats = registry.GetStats();
  EXPECT_EQ(stats.open_sessions, 1u);
  EXPECT_GT(stats.approx_bytes, 0u);
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);

  EXPECT_TRUE(registry.Close("alpha"));
  EXPECT_FALSE(registry.Close("alpha"));
  EXPECT_EQ(registry.Lookup("alpha"), nullptr);
  // A closed session stays alive for holders of the shared_ptr.
  EXPECT_TRUE(opened.value()
                  ->Ingest(data::RowBatch(nullptr, 0,
                                          opened.value()->spec().schema
                                              .NumFields()))
                  .ok());

  // An invalid spec is rejected before touching the registry.
  EXPECT_EQ(registry.Open("gamma", BenchmarkDatasetSpec(0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionRegistryTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // Budget sized for two sessions: opening a third evicts the least
  // recently used one.
  const std::size_t per_session =
      DatasetSession::Open(BenchmarkDatasetSpec(2))
          .value()
          ->ApproxMemoryBytes();
  SessionRegistryOptions options;
  options.max_bytes = 2 * per_session + per_session / 2;
  SessionRegistry registry(options);

  ASSERT_TRUE(registry.Open("a", BenchmarkDatasetSpec(2)).ok());
  ASSERT_TRUE(registry.Open("b", BenchmarkDatasetSpec(2)).ok());
  ASSERT_NE(registry.Lookup("a"), nullptr);  // touch: b is now LRU
  ASSERT_TRUE(registry.Open("c", BenchmarkDatasetSpec(2)).ok());

  EXPECT_NE(registry.Lookup("a"), nullptr);
  EXPECT_EQ(registry.Lookup("b"), nullptr);  // evicted as LRU
  EXPECT_NE(registry.Lookup("c"), nullptr);
  const SessionRegistry::Stats stats = registry.GetStats();
  EXPECT_EQ(stats.open_sessions, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.ttl_evictions, 0u);
  EXPECT_LE(stats.approx_bytes, options.max_bytes);
}

TEST(SessionRegistryTest, TtlEvictsIdleSessions) {
  // Deterministic idleness via the injected clock.
  auto now = std::chrono::steady_clock::time_point{};
  SessionRegistryOptions options;
  options.ttl = std::chrono::milliseconds(100);
  options.clock = [&now] { return now; };
  SessionRegistry registry(options);

  ASSERT_TRUE(registry.Open("idle", BenchmarkDatasetSpec(1)).ok());
  ASSERT_TRUE(registry.Open("busy", BenchmarkDatasetSpec(1)).ok());

  now += std::chrono::milliseconds(60);
  EXPECT_NE(registry.Lookup("busy"), nullptr);  // refreshes busy's idle time

  now += std::chrono::milliseconds(60);  // idle is now 120ms idle, busy 60ms
  EXPECT_EQ(registry.SweepExpired(), 1u);
  EXPECT_EQ(registry.Lookup("idle"), nullptr);
  EXPECT_NE(registry.Lookup("busy"), nullptr);

  const SessionRegistry::Stats stats = registry.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.ttl_evictions, 1u);

  // Lookup itself also enforces expiry.
  now += std::chrono::milliseconds(200);
  EXPECT_EQ(registry.Lookup("busy"), nullptr);
  EXPECT_EQ(registry.GetStats().ttl_evictions, 2u);
}

// Regression for the budget-smaller-than-one-session edge case: a session
// larger than the whole byte budget is served and evicted
// deterministically — it never flushes within-budget tenants, and steady
// tenant traffic never thrashes. (The spill-tier variant of this property
// lives in store_test.cc.)
TEST(SessionRegistryTest, OversizedSessionEvictsDeterministically) {
  const DatasetSessionSpec small_spec = BenchmarkDatasetSpec(1, 8);
  const DatasetSessionSpec whale_spec = BenchmarkDatasetSpec(6, 64);
  const std::size_t small_bytes =
      DatasetSession::Open(small_spec).value()->ApproxMemoryBytes();
  const std::size_t whale_bytes =
      DatasetSession::Open(whale_spec).value()->ApproxMemoryBytes();

  SessionRegistryOptions options;
  options.max_bytes = 2 * small_bytes + small_bytes / 2;  // two tenants
  ASSERT_GT(whale_bytes, options.max_bytes);
  SessionRegistry registry(options);

  ASSERT_TRUE(registry.Open("t1", small_spec).ok());
  ASSERT_TRUE(registry.Open("t2", small_spec).ok());

  // The whale opens (it still serves: the budget bounds retention, not
  // admission) without evicting the within-budget tenants.
  const auto whale = registry.Open("whale", whale_spec);
  ASSERT_TRUE(whale.ok());
  EXPECT_EQ(registry.GetStats().evictions, 0u);
  EXPECT_EQ(registry.GetStats().open_sessions, 3u);

  // The first touch of another name demotes exactly the whale; with no
  // spill backend that destroys its registry copy (the caller's
  // shared_ptr keeps serving).
  EXPECT_NE(registry.Lookup("t1"), nullptr);
  {
    const SessionRegistry::Stats stats = registry.GetStats();
    EXPECT_EQ(stats.open_sessions, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.approx_bytes, options.max_bytes);
  }
  EXPECT_TRUE(whale.value()
                  ->Ingest(data::RowBatch(nullptr, 0,
                                          whale_spec.schema.NumFields()))
                  .ok());

  // Steady tenant traffic causes no further motion — no thrash.
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(registry.Lookup("t1"), nullptr);
    EXPECT_NE(registry.Lookup("t2"), nullptr);
  }
  EXPECT_EQ(registry.GetStats().evictions, 1u);
  EXPECT_EQ(registry.GetStats().open_sessions, 2u);
}

// The eviction-safety contract, race-checked under ThreadSanitizer in CI:
// one thread streams ingests and refreshes through a session while
// another closes / reopens / budget-evicts it from the registry. The
// worker's shared_ptr must keep the evicted session fully functional.
TEST(SessionRegistryTest, EvictionRacingIngestAndReconstructIsSafe) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());

  SessionRegistryOptions registry_options;
  // A budget of one byte forces every Open beyond the newest to evict.
  registry_options.max_bytes = 1;
  SessionRegistry registry(registry_options, service.value()->pool());
  const DatasetSessionSpec spec = BenchmarkDatasetSpec(2, /*intervals=*/8);

  ASSERT_TRUE(registry.Open("hot", spec).ok());

  const std::size_t cols = spec.schema.NumFields();
  std::atomic<bool> stop{false};
  std::atomic<int> worker_failures{0};
  std::thread worker([&] {
    std::vector<double> rows(16 * cols, 42000.0);
    while (!stop.load()) {
      std::shared_ptr<DatasetSession> session = registry.Lookup("hot");
      if (session == nullptr) continue;  // evicted between open and here
      if (!session->Ingest(data::RowBatch(rows.data(), 16, cols)).ok() ||
          !session->ReconstructAll().ok()) {
        ++worker_failures;
        return;
      }
    }
  });

  for (int i = 0; i < 100; ++i) {
    // Budget eviction: every filler Open evicts the LRU entry, which is
    // frequently "hot" mid-ingest.
    ASSERT_TRUE(registry.Open("filler" + std::to_string(i), spec).ok());
    registry.Close("hot");
    ASSERT_TRUE(registry.Open("hot", spec).ok());
  }
  stop.store(true);
  worker.join();
  EXPECT_EQ(worker_failures.load(), 0);
  EXPECT_GT(registry.GetStats().evictions, 0u);
}

// ---------------------------------------------------------------- service

TEST(ServiceTest, CreateRejectsInvalidEngineOptions) {
  engine::BatchOptions options;
  options.num_threads = 1u << 20;
  const auto service = Service::Create(options);
  EXPECT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceTest, SynchronousServiceCompletesInline) {
  auto service = Service::Create(engine::BatchOptions{});  // 0 threads
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service.value()->pool(), nullptr);
  JobHandle<int> handle = service.value()->Submit<int>(
      [] { return Result<int>(41 + 1); });
  EXPECT_TRUE(handle.Poll());
  ASSERT_TRUE(handle.Wait().ok());
  EXPECT_EQ(handle.Wait().value(), 42);
}

TEST(ServiceTest, ErrorsTravelThroughResult) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  JobHandle<int> handle = service.value()->Submit<int>([]() -> Result<int> {
    return Status::FailedPrecondition("model not loaded");
  });
  const Result<int> result = handle.Wait();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceTest, OnCompleteFiresExactlyOnce) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  std::atomic<int> fired{0};
  JobHandle<int> handle =
      service.value()->Submit<int>([] { return Result<int>(7); });
  handle.OnComplete([&fired](const Result<int>& r) {
    if (r.ok() && r.value() == 7) ++fired;
  });
  // Wait() returning does not order against the callback (the worker may
  // still be inside it); synchronize on the callback's own effect.
  handle.Wait();
  while (fired.load() == 0) std::this_thread::yield();
  EXPECT_EQ(fired.load(), 1);

  // Registering after completion fires immediately.
  std::atomic<int> late{0};
  handle.OnComplete([&late](const Result<int>&) { ++late; });
  EXPECT_EQ(late.load(), 1);
}

TEST(ServiceTest, MultipleOnCompleteRegistrationsAllFire) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  std::atomic<bool> release{false};
  JobHandle<int> handle =
      service.value()->Submit<int>([&release]() -> Result<int> {
        while (!release.load()) std::this_thread::yield();
        return 5;
      });
  // Both registrations happen strictly before completion (the job is
  // gated on `release`), so they must chain, not overwrite.
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  JobHandle<int> copy = handle;
  handle.OnComplete([&first](const Result<int>& r) {
    if (r.ok()) first += r.value();
  });
  copy.OnComplete([&second](const Result<int>& r) {
    if (r.ok()) second += r.value();
  });
  release = true;
  handle.Wait();
  while (first.load() == 0 || second.load() == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(first.load(), 5);
  EXPECT_EQ(second.load(), 5);
}

// The acceptance property: N concurrent reconstruction jobs return results
// identical to running the same jobs sequentially.
TEST(ServiceTest, ConcurrentJobsMatchSequentialExecution) {
  const StreamFixture fx;
  engine::BatchOptions options;
  options.num_threads = 4;
  options.shard_size = 512;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());

  const std::vector<std::size_t> columns{
      synth::kSalary, synth::kCommission, synth::kAge, synth::kHvalue,
      synth::kSalary, synth::kAge};

  // Sequential reference.
  std::vector<reconstruct::Reconstruction> sequential;
  for (std::size_t col : columns) {
    const data::FieldSpec& field = fx.original->schema().Field(col);
    const reconstruct::Partition partition(field.lo, field.hi, 20);
    const reconstruct::BayesReconstructor reconstructor(
        fx.randomizer->ModelFor(col), {});
    sequential.push_back(reconstructor.FitParallel(
        fx.perturbed->Column(col), partition, nullptr, options.shard_size));
  }

  // Concurrent submission of the same jobs.
  std::vector<JobHandle<reconstruct::Reconstruction>> handles;
  for (std::size_t col : columns) {
    handles.push_back(service.value()->Submit<reconstruct::Reconstruction>(
        [&fx, col, &options]() -> Result<reconstruct::Reconstruction> {
          const data::FieldSpec& field = fx.original->schema().Field(col);
          const reconstruct::Partition partition(field.lo, field.hi, 20);
          const reconstruct::BayesReconstructor reconstructor(
              fx.randomizer->ModelFor(col), {});
          return reconstructor.FitParallel(fx.perturbed->Column(col),
                                           partition, nullptr,
                                           options.shard_size);
        }));
  }
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const Result<reconstruct::Reconstruction> r = handles[j].Wait();
    ASSERT_TRUE(r.ok()) << "job " << j;
    EXPECT_TRUE(ReconstructionsIdentical(sequential[j], r.value()))
        << "job " << j;
  }
}

TEST(ServiceTest, StreamingSessionDrivenByAsyncJobs) {
  // A miniature server loop: ingest jobs and a final reconstruct job all
  // flow through Submit; the estimate matches the batch fit bit for bit.
  const StreamFixture fx;
  engine::BatchOptions options;
  options.num_threads = 4;
  options.shard_size = 512;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());

  const SessionSpec spec = fx.SalarySpec();
  auto opened = service.value()->OpenSession(spec);
  ASSERT_TRUE(opened.ok());
  ReconstructionSession* session = opened.value().get();
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);

  std::vector<JobHandle<bool>> ingests;
  constexpr std::size_t kBatch = 700;
  for (std::size_t offset = 0; offset < column.size(); offset += kBatch) {
    const std::size_t take = std::min(kBatch, column.size() - offset);
    ingests.push_back(service.value()->Submit<bool>(
        [session, &column, offset, take]() -> Result<bool> {
          PPDM_RETURN_IF_ERROR(session->Ingest(column.data() + offset, take));
          return true;
        }));
  }
  for (auto& h : ingests) ASSERT_TRUE(h.Wait().ok());
  EXPECT_EQ(session->record_count(), column.size());

  JobHandle<reconstruct::Reconstruction> fit =
      service.value()->Submit<reconstruct::Reconstruction>(
          [session]() -> Result<reconstruct::Reconstruction> {
            return session->Reconstruct();
          });
  const auto streamed = fit.Wait();
  ASSERT_TRUE(streamed.ok());

  const reconstruct::Partition partition(spec.lo, spec.hi, spec.intervals);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), spec.reconstruction);
  const reconstruct::Reconstruction batch =
      reconstructor.FitParallel(column, partition, nullptr, spec.shard_size);
  EXPECT_TRUE(ReconstructionsIdentical(batch, streamed.value()));
}

// ------------------------------------------- service admission control

TEST(ServiceTest, BoundedQueueShedsWithResourceExhausted) {
  engine::BatchOptions options;
  options.num_threads = 2;
  ServiceOptions limits;
  limits.max_pending = 1;
  auto service = Service::Create(options, limits);
  ASSERT_TRUE(service.ok());

  // Park both workers so admitted jobs stay pending, then fill the
  // one-slot queue. Wait for each blocker to start before submitting
  // the next: an unstarted blocker still occupies the queue slot and
  // would (correctly) shed its sibling.
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  std::vector<JobHandle<int>> blockers;
  for (int i = 0; i < 2; ++i) {
    blockers.push_back(
        service.value()->Submit<int>([&release, &started]() -> Result<int> {
          ++started;
          while (!release.load()) std::this_thread::yield();
          return 1;
        }));
    while (started.load() < i + 1) std::this_thread::yield();
  }
  JobHandle<int> queued =
      service.value()->Submit<int>([] { return Result<int>(2); });
  EXPECT_EQ(service.value()->pending(), 1u);

  // The queue is full: the next submission must shed, not block or grow.
  JobHandle<int> shed =
      service.value()->Submit<int>([] { return Result<int>(3); });
  EXPECT_TRUE(shed.Poll());  // completed immediately, without running
  EXPECT_EQ(shed.Wait().status().code(), StatusCode::kResourceExhausted);

  release = true;
  for (auto& h : blockers) EXPECT_TRUE(h.Wait().ok());
  ASSERT_TRUE(queued.Wait().ok());
  EXPECT_EQ(queued.Wait().value(), 2);
  EXPECT_EQ(service.value()->pending(), 0u);
}

TEST(ServiceTest, ExpiredDeadlineCompletesWithoutRunning) {
  auto service = Service::Create(engine::BatchOptions{});  // inline
  ASSERT_TRUE(service.ok());
  SubmitOptions opts;
  opts.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  bool ran = false;
  JobHandle<int> handle = service.value()->Submit<int>(
      [&ran]() -> Result<int> {
        ran = true;
        return 1;
      },
      opts);
  EXPECT_EQ(handle.Wait().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ran);

  // A live deadline lets the job through.
  JobHandle<int> fine = service.value()->Submit<int>(
      [] { return Result<int>(4); },
      SubmitOptions::After(std::chrono::microseconds(60'000'000)));
  ASSERT_TRUE(fine.Wait().ok());
  EXPECT_EQ(fine.Wait().value(), 4);
}

TEST(ServiceTest, CancelledTokenCompletesWithoutRunning) {
  auto service = Service::Create(engine::BatchOptions{});  // inline
  ASSERT_TRUE(service.ok());
  SubmitOptions opts;
  opts.cancel = std::make_shared<CancellationToken>();
  opts.cancel->Cancel();
  bool ran = false;
  JobHandle<int> handle = service.value()->Submit<int>(
      [&ran]() -> Result<int> {
        ran = true;
        return 1;
      },
      opts);
  EXPECT_EQ(handle.Wait().status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(ran);
}

TEST(ServiceTest, WaitForTimesOutThenDeliversTheResult) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  std::atomic<bool> release{false};
  JobHandle<int> handle =
      service.value()->Submit<int>([&release]() -> Result<int> {
        while (!release.load()) std::this_thread::yield();
        return 9;
      });
  EXPECT_FALSE(
      handle.WaitFor(std::chrono::microseconds(1000)).has_value());
  release = true;
  const std::optional<Result<int>> settled =
      handle.WaitFor(std::chrono::microseconds(60'000'000));
  ASSERT_TRUE(settled.has_value());
  ASSERT_TRUE(settled->ok());
  EXPECT_EQ(settled->value(), 9);
}

TEST(ServiceTest, DrainBlocksSubmissionsUntilResume) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      service.value()->Submit<int>([] { return Result<int>(1); }).Wait().ok());

  // Drain returns only once every in-flight job has completed; while
  // draining, new submissions shed with a retryable code.
  service.value()->Drain();
  JobHandle<int> refused =
      service.value()->Submit<int>([] { return Result<int>(2); });
  EXPECT_EQ(refused.Wait().status().code(), StatusCode::kUnavailable);

  service.value()->Resume();
  JobHandle<int> accepted =
      service.value()->Submit<int>([] { return Result<int>(3); });
  ASSERT_TRUE(accepted.Wait().ok());
  EXPECT_EQ(accepted.Wait().value(), 3);
}

TEST(ServiceTest, DrainWaitsForInFlightJobs) {
  engine::BatchOptions options;
  options.num_threads = 2;
  auto service = Service::Create(options);
  ASSERT_TRUE(service.ok());
  std::atomic<bool> release{false};
  std::atomic<bool> finished{false};
  JobHandle<int> handle = service.value()->Submit<int>(
      [&release, &finished]() -> Result<int> {
        while (!release.load()) std::this_thread::yield();
        finished = true;
        return 1;
      });
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release = true;
  });
  service.value()->Drain();  // must not return before the job completes
  EXPECT_TRUE(finished.load());
  releaser.join();
  service.value()->Resume();
  EXPECT_TRUE(handle.Wait().ok());
}

// ------------------------------------------------------------- experiment

TEST(RunExperimentTest, RejectsInvalidSpec) {
  Spec spec;
  spec.noise.confidence = 2.0;
  const auto result = RunExperiment(spec, {tree::TrainingMode::kByClass});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RunExperimentTest, RejectsEmptyModeList) {
  const auto result = RunExperiment(Spec{}, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RunExperimentTest, MatchesDirectCoreDriver) {
  Spec spec;
  spec.train_records = 1500;
  spec.test_records = 400;
  spec.seed = 9;
  spec.tree.intervals = 10;
  const auto via_api =
      RunExperiment(spec, {tree::TrainingMode::kRandomized});
  ASSERT_TRUE(via_api.ok());
  const std::vector<core::ModeResult> direct = core::RunModes(
      spec.ToExperimentConfig(), {tree::TrainingMode::kRandomized});
  ASSERT_EQ(via_api.value().size(), 1u);
  EXPECT_DOUBLE_EQ(via_api.value()[0].accuracy, direct[0].accuracy);
  EXPECT_EQ(via_api.value()[0].tree_nodes, direct[0].tree_nodes);
}

}  // namespace
}  // namespace ppdm::api
