// Unit tests for the common substrate: Status/Result, string helpers, and
// the deterministic RNG.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"

namespace ppdm {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
}

TEST(StatusTest, ResilienceConstructorsCarryTheirCodes) {
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

// ----------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsRejectedAsError) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrPrefersValue) {
  Result<double> r = 2.5;
  EXPECT_DOUBLE_EQ(r.value_or(0.0), 2.5);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto fields = Split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto fields = Split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(StringsTest, TrimStripsBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, JoinDoubles) {
  EXPECT_EQ(JoinDoubles({1.5, 2.0, 3.25}), "1.5, 2, 3.25");
  EXPECT_EQ(JoinDoubles({}), "");
}

TEST(StringsTest, ParseDoubleAcceptsValid) {
  auto r = ParseDouble(" 3.75 ");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 3.75);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("  ").ok());
}

TEST(StringsTest, ParseIntAcceptsValid) {
  auto r = ParseInt("-17");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), -17);
}

TEST(StringsTest, ParseIntRejectsFloats) {
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of 3..7 hit in 1000 draws
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(4, 4), 4);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianScaledMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> before = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, before);  // astronomically unlikely to be identity
}

TEST(RngTest, ForkedStreamsAreIndependentOfParentUsage) {
  Rng parent1(42);
  Rng child1 = parent1.Fork();
  Rng parent2(42);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child1.Next(), child2.Next());
  }
}

// ------------------------------------------------- Rng::Fork(stream_index)

TEST(RngTest, IndexedForkIsDeterministic) {
  const Rng parent1(42);
  const Rng parent2(42);
  Rng child1 = parent1.Fork(17);
  Rng child2 = parent2.Fork(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child1.Next(), child2.Next());
  }
}

TEST(RngTest, IndexedForkDoesNotAdvanceParent) {
  Rng forked(42);
  Rng control(42);
  for (std::uint64_t s = 0; s < 8; ++s) {
    Rng child = forked.Fork(s);
    child.Next();  // child usage must not leak into the parent either
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(forked.Next(), control.Next());
  }
}

TEST(RngTest, IndexedForkStreamsNeverCollide) {
  // Sharded perturbation derives one stream per (attribute, shard) cell;
  // a collision would hand two shards identical noise. The derivation is
  // injective in the index, so distinct indices must give distinct
  // streams — checked here on the first two outputs of 10k children
  // (and of the parent's own stream).
  const Rng parent(20000607);
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  Rng own(20000607);
  seen.insert({own.Next(), own.Next()});
  for (std::uint64_t s = 0; s < 10000; ++s) {
    Rng child = parent.Fork(s);
    const std::uint64_t a = child.Next();
    const std::uint64_t b = child.Next();
    EXPECT_TRUE(seen.insert({a, b}).second) << "stream " << s;
  }
}

TEST(RngTest, IndexedForkDiffersFromSequentialFork) {
  Rng a(7);
  const Rng b(7);
  Rng sequential = a.Fork();
  Rng indexed = b.Fork(0);
  // Different derivations — agreeing streams would mean shard 0 reuses
  // the legacy per-attribute stream.
  bool any_different = false;
  for (int i = 0; i < 4; ++i) {
    any_different |= sequential.Next() != indexed.Next();
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace ppdm
