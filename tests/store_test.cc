// Tests for the persistence subsystem: the endian-stable codec (every
// malformed input — truncated, bit-flipped, wrong magic, future version —
// comes back as a Status error, never a CHECK abort), byte-identical
// snapshot/restore of ShardStats / AttributeState / DatasetSession, the
// directory-backed SnapshotStore (atomic publication, corruption-safe
// reads), and the registry spill tier (eviction demotes, Lookup
// transparently re-admits, equivalence with a never-evicted registry —
// race-checked under ThreadSanitizer in CI).

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset_session.h"
#include "api/registry.h"
#include "common/fault.h"
#include "common/retry.h"
#include "data/row_batch.h"
#include "engine/shard_stats.h"
#include "engine/thread_pool.h"
#include "perturb/randomizer.h"
#include "store/codec.h"
#include "store/session_codec.h"
#include "store/snapshot_store.h"
#include "store/spill_store.h"
#include "synth/generator.h"

namespace ppdm::store {
namespace {

namespace fs = std::filesystem;

// A unique on-disk directory per test, removed on destruction.
struct TempDir {
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path = (fs::temp_directory_path() /
            (std::string("ppdm_store_test_") + info->test_suite_name() +
             "_" + info->name()))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// A dataset-session spec over the first `num_attrs` benchmark columns.
api::DatasetSessionSpec BenchmarkDatasetSpec(std::size_t num_attrs,
                                             std::size_t intervals = 12) {
  api::DatasetSessionSpec spec;
  spec.schema = synth::BenchmarkSchema();
  for (std::size_t column = 0; column < num_attrs; ++column) {
    api::AttributeSpec attr;
    attr.column = column;
    attr.intervals = intervals;
    attr.noise = perturb::NoiseKind::kUniform;
    attr.privacy_fraction = 1.0;
    spec.attributes.push_back(attr);
  }
  spec.shard_size = 256;
  return spec;
}

/// Perturbed benchmark records, flattened row-major. (Mirrors
/// bench::PerturbedRowMajor in bench/bench_util.h — kept local so the
/// test tree does not include bench tooling; change both if the arrival
/// shape ever changes.)
std::vector<double> PerturbedRows(std::size_t num_records,
                                  std::size_t* num_cols,
                                  std::uint64_t seed = 23) {
  synth::GeneratorOptions gen;
  gen.num_records = num_records;
  gen.seed = seed;
  const data::Dataset original = synth::Generate(gen);
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  noise.seed = seed ^ 0x5DEECE66DULL;
  const data::Dataset perturbed =
      perturb::Randomizer(original.schema(), noise).Perturb(original);
  *num_cols = perturbed.NumCols();
  std::vector<double> rows(perturbed.NumRows() * perturbed.NumCols());
  for (std::size_t c = 0; c < perturbed.NumCols(); ++c) {
    const std::vector<double>& column = perturbed.Column(c);
    for (std::size_t r = 0; r < perturbed.NumRows(); ++r) {
      rows[r * perturbed.NumCols() + c] = column[r];
    }
  }
  return rows;
}

bool ReconstructionsIdentical(const reconstruct::Reconstruction& a,
                              const reconstruct::Reconstruction& b) {
  return a.masses == b.masses && a.iterations == b.iterations &&
         a.chi_square_trace == b.chi_square_trace &&
         a.log_likelihood_trace == b.log_likelihood_trace &&
         a.sample_count == b.sample_count;
}

// ------------------------------------------------------------------ codec

TEST(CodecTest, PrimitivesAreLittleEndianOnTheWire) {
  Writer writer;
  writer.PutU32(0x01020304u);
  writer.PutU64(0x1122334455667788ull);
  const std::string& bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), 12u);
  const unsigned char expect[12] = {0x04, 0x03, 0x02, 0x01, 0x88, 0x77,
                                    0x66, 0x55, 0x44, 0x33, 0x22, 0x11};
  EXPECT_EQ(std::memcmp(bytes.data(), expect, sizeof(expect)), 0);
}

TEST(CodecTest, PrimitiveRoundTrip) {
  Writer writer;
  writer.PutU8(0xAB);
  writer.PutU32(0xDEADBEEFu);
  writer.PutU64(0xFEEDFACECAFEBEEFull);
  writer.PutDouble(-0.1234567890123456789);
  writer.PutString("perturb \xF0\x9F\x94\x92 reconstruct");
  writer.PutU64Array({1, 0, 42, ~0ull});
  writer.PutDoubleArray({0.0, -1.5, 1e308});

  Reader reader(writer.bytes());
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0xFEEDFACECAFEBEEFull);
  EXPECT_EQ(reader.ReadDouble().value(), -0.1234567890123456789);
  EXPECT_EQ(reader.ReadString().value(), "perturb \xF0\x9F\x94\x92 reconstruct");
  EXPECT_EQ(reader.ReadU64Array().value(),
            (std::vector<std::uint64_t>{1, 0, 42, ~0ull}));
  EXPECT_EQ(reader.ReadDoubleArray().value(),
            (std::vector<double>{0.0, -1.5, 1e308}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, EveryTruncationIsAStatusError) {
  Writer writer;
  writer.PutHeader(kFormatVersion);
  writer.BeginSection(0x31415926);
  writer.PutString("payload");
  writer.PutU64Array({7, 8, 9});
  writer.EndSection();
  const std::string full = writer.bytes();

  for (std::size_t len = 0; len < full.size(); ++len) {
    Reader reader(std::string_view(full).substr(0, len));
    std::uint32_t version = 0;
    Status status = reader.ReadHeader(kFormatVersion, &version);
    if (status.ok()) {
      const Result<Reader> section = reader.ReadSection(0x31415926);
      status = section.status();
      if (section.ok()) {
        Reader payload = section.value();
        status = payload.ReadString().status();
        if (status.ok()) status = payload.ReadU64Array().status();
      }
    }
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes";
  }
}

TEST(CodecTest, HeaderRejectsWrongMagicAndFutureVersion) {
  Writer writer;
  writer.PutHeader(kFormatVersion);
  std::string bytes = writer.bytes();
  std::uint32_t version = 0;

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  Reader bad(wrong_magic);
  EXPECT_EQ(bad.ReadHeader(kFormatVersion, &version).code(),
            StatusCode::kInvalidArgument);

  Writer future;
  future.PutHeader(kFormatVersion + 1);
  Reader newer(future.bytes());
  EXPECT_EQ(newer.ReadHeader(kFormatVersion, &version).code(),
            StatusCode::kFailedPrecondition);

  Reader good(bytes);
  EXPECT_TRUE(good.ReadHeader(kFormatVersion, &version).ok());
  EXPECT_EQ(version, kFormatVersion);
}

TEST(CodecTest, SectionCrcCatchesEveryBitFlip) {
  Writer writer;
  writer.BeginSection(0x600DF00D);
  writer.PutU64(1234567890123ull);
  writer.PutString("crc me");
  writer.EndSection();
  const std::string clean = writer.bytes();
  ASSERT_TRUE(Reader(clean).ReadSection(0x600DF00D).ok());

  for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
    std::string flipped = clean;
    flipped[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(flipped[bit / 8]) ^ (1u << (bit % 8)));
    const Result<Reader> section = Reader(flipped).ReadSection(0x600DF00D);
    EXPECT_FALSE(section.ok()) << "bit " << bit;
  }
}

// ----------------------------------------------------- field-level codecs

TEST(ShardStatsCodecTest, RoundTripIsByteIdentical) {
  engine::ShardStats stats(6, 2);
  stats.Add(0, 0);
  stats.Add(5, 1);
  stats.Add(5, 1);
  stats.Add(3, 0);

  Writer writer;
  EncodeShardStats(stats, &writer);
  Reader reader(writer.bytes());
  const Result<engine::ShardStats> decoded = DecodeShardStats(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(decoded.value().num_bins(), 6u);
  EXPECT_EQ(decoded.value().num_classes(), 2u);
  EXPECT_EQ(decoded.value().record_count(), 4u);
  EXPECT_EQ(decoded.value().counts(), stats.counts());

  Writer again;
  EncodeShardStats(decoded.value(), &again);
  EXPECT_EQ(again.bytes(), writer.bytes());
}

TEST(ShardStatsCodecTest, RejectsInconsistentCounts) {
  engine::ShardStats stats(4, 1);
  stats.Add(1, 0);
  Writer writer;
  EncodeShardStats(stats, &writer);

  // Corrupt the record_count field (third u64) without touching counts;
  // the decoder must reject the inconsistency, not CHECK-abort.
  std::string bytes = writer.bytes();
  bytes[16] = 9;
  Reader reader(bytes);
  const Result<engine::ShardStats> decoded = DecodeShardStats(&reader);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(AttributeStateCodecTest, RoundTripPreservesLayoutCountsAndMasses) {
  api::AttributeState state(
      0.0, 100.0, 10,
      perturb::NoiseForPrivacy(perturb::NoiseKind::kUniform, 1.0, 100.0),
      reconstruct::ReconstructionOptions{});
  for (int i = 0; i < 500; ++i) {
    state.stats().Add(state.BinOf(i % 140 - 20.0), 0);
  }
  state.set_last_masses(std::vector<double>(10, 0.1));

  Writer writer;
  EncodeAttributeState(state, &writer);
  Reader reader(writer.bytes());
  Result<api::AttributeState> decoded = DecodeAttributeState(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());

  const api::AttributeState& restored = decoded.value();
  EXPECT_EQ(restored.partition().lo(), state.partition().lo());
  EXPECT_EQ(restored.partition().hi(), state.partition().hi());
  EXPECT_EQ(restored.partition().intervals(), state.partition().intervals());
  EXPECT_EQ(restored.noise_model().kind(), state.noise_model().kind());
  EXPECT_EQ(restored.noise_model().scale(), state.noise_model().scale());
  EXPECT_EQ(restored.num_bins(), state.num_bins());
  EXPECT_EQ(restored.stats().counts(), state.stats().counts());
  EXPECT_EQ(restored.last_masses(), state.last_masses());

  Writer again;
  EncodeAttributeState(restored, &again);
  EXPECT_EQ(again.bytes(), writer.bytes());
}

// ------------------------------------------------- dataset-session codec

// The acceptance property: snapshot a mid-stream session, restore it, and
// continue — Ingest + ReconstructAll on the restored session must be
// byte-identical to the never-snapshotted one, at 0/1/2/8 threads.
TEST(DatasetSnapshotTest, SnapshotRestoreContinuationIsByteIdentical) {
  const std::size_t num_attrs = 3;
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(num_attrs);
  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(3000, &num_cols);
  const std::size_t num_rows = rows.size() / num_cols;
  const data::RowBatch all_rows(rows.data(), num_rows, num_cols);
  const std::size_t half = num_rows / 2;

  for (std::size_t threads : {std::size_t{0}, std::size_t{1},
                              std::size_t{2}, std::size_t{8}}) {
    std::optional<engine::ThreadPool> pool;
    if (threads > 0) pool.emplace(threads);
    engine::ThreadPool* p = threads > 0 ? &*pool : nullptr;

    auto live = api::DatasetSession::Open(spec, p);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(live.value()->Ingest(all_rows.Slice(0, half)).ok());
    // A mid-stream refresh gives the snapshot warm-start masses to carry.
    ASSERT_TRUE(live.value()->ReconstructAll().ok());

    const std::string bytes = EncodeDatasetSession(*live.value());
    auto restored = DecodeDatasetSession(bytes, p);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString()
                               << " at threads " << threads;
    EXPECT_EQ(restored.value()->record_count(), half);
    // Re-encoding the restored session reproduces the file bit for bit.
    EXPECT_EQ(EncodeDatasetSession(*restored.value()), bytes);

    // Continue both sessions identically.
    ASSERT_TRUE(
        live.value()->Ingest(all_rows.Slice(half, num_rows - half)).ok());
    ASSERT_TRUE(restored.value()
                    ->Ingest(all_rows.Slice(half, num_rows - half))
                    .ok());
    const auto live_estimates = live.value()->ReconstructAll();
    const auto restored_estimates = restored.value()->ReconstructAll();
    ASSERT_TRUE(live_estimates.ok());
    ASSERT_TRUE(restored_estimates.ok());
    for (std::size_t a = 0; a < num_attrs; ++a) {
      EXPECT_TRUE(ReconstructionsIdentical(live_estimates.value()[a],
                                           restored_estimates.value()[a]))
          << "attribute " << a << ", threads " << threads;
    }
  }
}

TEST(DatasetSnapshotTest, EveryBitFlipIsDetected) {
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2, 8);
  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(200, &num_cols);
  auto session = api::DatasetSession::Open(spec);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()
                  ->Ingest(data::RowBatch(rows.data(),
                                          rows.size() / num_cols, num_cols))
                  .ok());
  ASSERT_TRUE(session.value()->ReconstructAll().ok());
  const std::string clean = EncodeDatasetSession(*session.value());
  ASSERT_TRUE(DecodeDatasetSession(clean).ok());

  // Flip every bit of the snapshot: each flip must surface as a Status
  // error (headers are validated; payloads are CRC32-guarded, and CRC32
  // detects all single-bit corruption) and must never abort.
  for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
    std::string flipped = clean;
    flipped[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(flipped[bit / 8]) ^ (1u << (bit % 8)));
    const auto decoded = DecodeDatasetSession(flipped);
    EXPECT_FALSE(decoded.ok()) << "bit " << bit;
  }
}

TEST(DatasetSnapshotTest, EveryTruncationIsDetected) {
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1, 8);
  auto session = api::DatasetSession::Open(spec);
  ASSERT_TRUE(session.ok());
  const std::string clean = EncodeDatasetSession(*session.value());

  for (std::size_t len = 0; len < clean.size(); ++len) {
    const auto decoded =
        DecodeDatasetSession(std::string_view(clean).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes";
  }
  // Trailing garbage is rejected too.
  const auto padded = DecodeDatasetSession(clean + "x");
  EXPECT_FALSE(padded.ok());
}

// A CRC-valid snapshot with hostile layout *parameters* (absurd noise
// scale, interval count, or confidence) must be rejected before any
// state is derived — the derivation would otherwise abort on an
// astronomically large bin-layout allocation.
TEST(DatasetSnapshotTest, HostileLayoutParametersAreRejectedNotFatal) {
  // AttributeState path: a 1e18 noise scale over a unit domain.
  Writer attr;
  attr.PutDouble(0.0);
  attr.PutDouble(1.0);
  attr.PutU64(2);         // intervals
  attr.PutU8(1);          // uniform
  attr.PutDouble(1e18);   // scale -> ~4e18 padding bins
  attr.PutU64(100);       // EM max_iterations
  attr.PutDouble(1e-4);   // EM chi_square_epsilon
  attr.PutU8(1);          // binned
  Reader attr_reader(attr.bytes());
  const auto state = DecodeAttributeState(&attr_reader);
  EXPECT_EQ(state.status().code(), StatusCode::kInvalidArgument);

  // Whole-session path: a spec the validation layer accepts (confidence
  // inside (0,1)) whose derived noise explodes the padded layout, and
  // one with an implausible interval count.
  for (int variant = 0; variant < 2; ++variant) {
    api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
    if (variant == 0) {
      spec.attributes[0].confidence = 1e-12;  // alpha = p*R/(2c) -> huge
    } else {
      spec.attributes[0].intervals = (1u << 20) + 1;
    }
    Writer writer;
    writer.PutHeader(kFormatVersion);
    writer.BeginSection(kSpecSectionTag);
    EncodeDatasetSessionSpec(spec, &writer);
    writer.EndSection();
    writer.BeginSection(kStateSectionTag);
    writer.EndSection();
    const auto decoded = DecodeDatasetSession(writer.bytes());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << "variant " << variant;
  }
}

TEST(DatasetSnapshotTest, PeekReportsWithoutRebuilding) {
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2);
  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(300, &num_cols);
  auto session = api::DatasetSession::Open(spec);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()
                  ->Ingest(data::RowBatch(rows.data(),
                                          rows.size() / num_cols, num_cols))
                  .ok());
  const Result<SnapshotInfo> info =
      PeekDatasetSession(EncodeDatasetSession(*session.value()));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().version, kFormatVersion);
  EXPECT_EQ(info.value().records, 300u);
  EXPECT_EQ(info.value().batches, 1u);
  EXPECT_EQ(info.value().attributes, 2u);
}

// --------------------------------------------------------- snapshot store

TEST(SnapshotStoreTest, PutGetListDeleteLifecycle) {
  TempDir dir;
  const Result<SnapshotStore> opened = SnapshotStore::Open(dir.path);
  ASSERT_TRUE(opened.ok());
  const SnapshotStore& store = opened.value();

  EXPECT_FALSE(store.Contains("alpha"));
  EXPECT_EQ(store.Get("alpha").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.Put("alpha", "bytes-a").ok());
  ASSERT_TRUE(store.Put("beta", "bytes-b").ok());
  EXPECT_TRUE(store.Contains("alpha"));
  EXPECT_EQ(store.Get("alpha").value(), "bytes-a");
  EXPECT_EQ(store.List().value(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(store.Count(), 2u);
  EXPECT_EQ(store.TotalBytes(), 14u);

  // Overwrite replaces atomically (shorter content, no stale tail).
  ASSERT_TRUE(store.Put("alpha", "v2").ok());
  EXPECT_EQ(store.Get("alpha").value(), "v2");

  EXPECT_TRUE(store.Delete("alpha").ok());
  EXPECT_EQ(store.Delete("alpha").code(), StatusCode::kNotFound);
  EXPECT_EQ(store.List().value(), (std::vector<std::string>{"beta"}));
}

TEST(SnapshotStoreTest, NamesWithArbitraryBytesRoundTrip) {
  TempDir dir;
  const SnapshotStore store = SnapshotStore::Open(dir.path).value();
  const std::vector<std::string> names = {
      "plain", "with space", "slash/../escape", "per%cent",
      "uni\xC3\xA7ode", "..", "a.b.c"};
  for (const std::string& name : names) {
    ASSERT_TRUE(store.Put(name, "x" + name).ok()) << name;
  }
  for (const std::string& name : names) {
    EXPECT_EQ(store.Get(name).value(), "x" + name) << name;
  }
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(store.List().value(), sorted);
  // Everything stayed inside the store directory (no path traversal).
  EXPECT_EQ(store.Count(), names.size());
}

TEST(SnapshotStoreTest, EmptyNameIsRejectedEverywhere) {
  TempDir dir;
  const SnapshotStore store = SnapshotStore::Open(dir.path).value();
  // "" would encode to the dotfile ".snap", reachable by Get but
  // invisible to List; it must be rejected outright instead.
  EXPECT_EQ(store.Put("", "bytes").code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(store.Contains(""));
  EXPECT_EQ(store.Get("").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Delete("").code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.List().value().empty());
}

TEST(SnapshotStoreTest, CorruptedAndTruncatedFilesSurfaceStatus) {
  TempDir dir;
  const SnapshotStore store = SnapshotStore::Open(dir.path).value();
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1, 8);
  auto session = api::DatasetSession::Open(spec);
  ASSERT_TRUE(session.ok());
  const std::string clean = EncodeDatasetSession(*session.value());
  ASSERT_TRUE(store.Put("victim", clean).ok());

  // Truncate the file on disk behind the store's back.
  {
    std::ofstream out(
        (fs::path(dir.path) / "victim.snap").string(),
        std::ios::binary | std::ios::trunc);
    out.write(clean.data(), static_cast<std::streamsize>(clean.size() / 2));
  }
  const Result<std::string> half = store.Get("victim");
  ASSERT_TRUE(half.ok());  // the store serves bytes; the codec judges them
  EXPECT_FALSE(DecodeDatasetSession(half.value()).ok());

  // Replace with garbage: wrong magic, surfaced as InvalidArgument.
  ASSERT_TRUE(store.Put("victim", "not a snapshot at all").ok());
  const auto garbage = DecodeDatasetSession(store.Get("victim").value());
  EXPECT_EQ(garbage.status().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------- registry spill

std::vector<double> SmallBatch(const api::DatasetSessionSpec& spec,
                               double value) {
  return std::vector<double>(spec.schema.NumFields(), value);
}

TEST(SpillRegistryTest, EvictionSpillsAndLookupTransparentlyReadmits) {
  TempDir dir;
  SnapshotStore snapshots = SnapshotStore::Open(dir.path).value();
  SessionSpillStore spill(snapshots);

  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2);
  const std::size_t per_session =
      api::DatasetSession::Open(spec).value()->ApproxMemoryBytes();
  api::SessionRegistryOptions options;
  options.max_bytes = per_session + per_session / 2;  // room for one
  options.spill = &spill;
  api::SessionRegistry registry(options);

  auto a = registry.Open("a", spec);
  ASSERT_TRUE(a.ok());
  const std::vector<double> row = SmallBatch(spec, 30000.0);
  ASSERT_TRUE(a.value()
                  ->Ingest(data::RowBatch(row.data(), 1,
                                          spec.schema.NumFields()))
                  .ok());
  a.value().reset();  // registry holds the only reference now

  ASSERT_TRUE(registry.Open("b", spec).ok());  // evicts + spills "a"
  {
    const api::SessionRegistry::Stats stats = registry.GetStats();
    EXPECT_EQ(stats.open_sessions, 1u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.spills, 1u);
    EXPECT_EQ(stats.spilled_sessions, 1u);
    EXPECT_GT(stats.spilled_bytes, 0u);
  }
  EXPECT_TRUE(snapshots.Contains("a"));

  // Open must refuse the spilled name: it is still logically open.
  EXPECT_EQ(registry.Open("a", spec).status().code(),
            StatusCode::kFailedPrecondition);

  // Lookup re-admits with the accumulated evidence intact (and demotes
  // "b" to fit the budget again).
  const std::shared_ptr<api::DatasetSession> readmitted =
      registry.Lookup("a");
  ASSERT_NE(readmitted, nullptr);
  EXPECT_EQ(readmitted->record_count(), 1u);
  {
    const api::SessionRegistry::Stats stats = registry.GetStats();
    EXPECT_EQ(stats.readmissions, 1u);
    EXPECT_EQ(stats.spills, 2u);  // "b" went down
    EXPECT_EQ(stats.spill_failures, 0u);
    EXPECT_EQ(stats.hits, 1u);  // a re-admission serves the lookup
  }

  // Close drops both tiers; the name becomes reusable.
  EXPECT_TRUE(registry.Close("b"));
  EXPECT_FALSE(snapshots.Contains("b"));
  EXPECT_TRUE(registry.Close("a"));
  EXPECT_EQ(registry.Lookup("a"), nullptr);
  EXPECT_TRUE(registry.Open("a", spec).ok());
}

// The acceptance property: traffic through a budget-starved registry with
// a spill tier produces byte-identical estimates to an unbounded registry
// — sessions keep all their evidence across demote/re-admit cycles.
TEST(SpillRegistryTest, SpilledRegistryEquivalentToNeverEvicted) {
  const std::size_t num_sessions = 3;
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2);
  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(1200, &num_cols);
  const std::size_t num_rows = rows.size() / num_cols;
  const data::RowBatch all_rows(rows.data(), num_rows, num_cols);

  for (std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    std::optional<engine::ThreadPool> pool;
    if (threads > 0) pool.emplace(threads);
    engine::ThreadPool* p = threads > 0 ? &*pool : nullptr;

    TempDir dir;
    SnapshotStore snapshots = SnapshotStore::Open(dir.path).value();
    SessionSpillStore spill(snapshots);
    api::SessionRegistryOptions starved_options;
    starved_options.max_bytes = 1;  // nothing fits: every touch demotes
    starved_options.spill = &spill;
    api::SessionRegistry starved(starved_options, p);
    api::SessionRegistry unbounded({}, p);

    for (std::size_t s = 0; s < num_sessions; ++s) {
      const std::string name = "s" + std::to_string(s);
      ASSERT_TRUE(starved.Open(name, spec).ok());
      ASSERT_TRUE(unbounded.Open(name, spec).ok());
    }
    // Interleave uneven batches round-robin across sessions, always
    // re-Looking-up (the serving pattern spill-exactness asks for).
    std::size_t offset = 0, step = 17;
    while (offset < num_rows) {
      const std::size_t take = std::min(step, num_rows - offset);
      const std::string name =
          "s" + std::to_string(offset % num_sessions);
      const data::RowBatch batch = all_rows.Slice(offset, take);
      std::shared_ptr<api::DatasetSession> hot = starved.Lookup(name);
      std::shared_ptr<api::DatasetSession> cold = unbounded.Lookup(name);
      ASSERT_NE(hot, nullptr);
      ASSERT_NE(cold, nullptr);
      ASSERT_TRUE(hot->Ingest(batch).ok());
      ASSERT_TRUE(cold->Ingest(batch).ok());
      hot.reset();  // drop before the next touch demotes this session
      cold.reset();
      offset += take;
      step = step * 2 + 1;
    }
    ASSERT_GT(starved.GetStats().spills, 0u);
    ASSERT_GT(starved.GetStats().readmissions, 0u);

    for (std::size_t s = 0; s < num_sessions; ++s) {
      const std::string name = "s" + std::to_string(s);
      std::shared_ptr<api::DatasetSession> hot = starved.Lookup(name);
      std::shared_ptr<api::DatasetSession> cold = unbounded.Lookup(name);
      ASSERT_NE(hot, nullptr);
      ASSERT_NE(cold, nullptr);
      EXPECT_EQ(hot->record_count(), cold->record_count());
      const auto hot_estimates = hot->ReconstructAll();
      const auto cold_estimates = cold->ReconstructAll();
      ASSERT_TRUE(hot_estimates.ok());
      ASSERT_TRUE(cold_estimates.ok());
      for (std::size_t a = 0; a < spec.attributes.size(); ++a) {
        EXPECT_TRUE(ReconstructionsIdentical(hot_estimates.value()[a],
                                             cold_estimates.value()[a]))
            << name << " attribute " << a << ", threads " << threads;
      }
    }
    EXPECT_EQ(starved.GetStats().spill_failures, 0u);
  }
}

// Satellite regression: a session larger than the whole budget must
// spill/admit deterministically — never flushing within-budget tenants,
// never thrashing them on repeated access.
TEST(SpillRegistryTest, OversizedSessionNeverFlushesTenants) {
  TempDir dir;
  SnapshotStore snapshots = SnapshotStore::Open(dir.path).value();
  SessionSpillStore spill(snapshots);

  const api::DatasetSessionSpec small_spec = BenchmarkDatasetSpec(1, 8);
  const api::DatasetSessionSpec whale_spec = BenchmarkDatasetSpec(6, 64);
  const std::size_t small_bytes =
      api::DatasetSession::Open(small_spec).value()->ApproxMemoryBytes();
  const std::size_t whale_bytes =
      api::DatasetSession::Open(whale_spec).value()->ApproxMemoryBytes();
  ASSERT_GT(whale_bytes, 3 * small_bytes);

  api::SessionRegistryOptions options;
  options.max_bytes = 2 * small_bytes + small_bytes / 2;  // two tenants
  ASSERT_GT(whale_bytes, options.max_bytes);
  options.spill = &spill;
  api::SessionRegistry registry(options);

  ASSERT_TRUE(registry.Open("t1", small_spec).ok());
  ASSERT_TRUE(registry.Open("t2", small_spec).ok());
  ASSERT_EQ(registry.GetStats().evictions, 0u);

  // Opening the whale serves it but must not flush the tenants.
  ASSERT_TRUE(registry.Open("whale", whale_spec).ok());
  EXPECT_NE(registry.Lookup("t1"), nullptr);  // demotes the whale
  EXPECT_NE(registry.Lookup("t2"), nullptr);
  {
    const api::SessionRegistry::Stats stats = registry.GetStats();
    EXPECT_EQ(stats.open_sessions, 2u);       // both tenants resident
    EXPECT_EQ(stats.evictions, 1u);           // exactly the whale
    EXPECT_EQ(stats.spills, 1u);
    EXPECT_LE(stats.approx_bytes, options.max_bytes);
  }

  // Steady tenant traffic causes no further motion (no thrash).
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(registry.Lookup("t1"), nullptr);
    EXPECT_NE(registry.Lookup("t2"), nullptr);
  }
  EXPECT_EQ(registry.GetStats().evictions, 1u);

  // Touching the whale re-admits it deterministically; the next tenant
  // touch demotes it again — tenants still never spill.
  EXPECT_NE(registry.Lookup("whale"), nullptr);
  EXPECT_NE(registry.Lookup("t1"), nullptr);
  const api::SessionRegistry::Stats stats = registry.GetStats();
  EXPECT_EQ(stats.readmissions, 1u);
  EXPECT_EQ(stats.evictions, 2u);  // the whale both times
  EXPECT_EQ(stats.open_sessions, 2u);
}

// Lookup of a corrupt capture is a miss that keeps the bytes (operator
// forensics) until Close() discards them.
TEST(SpillRegistryTest, CorruptCaptureIsAMissUntilClosed) {
  TempDir dir;
  SnapshotStore snapshots = SnapshotStore::Open(dir.path).value();
  SessionSpillStore spill(snapshots);
  api::SessionRegistryOptions options;
  options.spill = &spill;
  api::SessionRegistry registry(options);

  ASSERT_TRUE(snapshots.Put("broken", "these are not the bytes").ok());
  EXPECT_EQ(registry.Lookup("broken"), nullptr);
  {
    const api::SessionRegistry::Stats stats = registry.GetStats();
    EXPECT_EQ(stats.spill_failures, 1u);
    EXPECT_EQ(stats.misses, 1u);
  }
  EXPECT_TRUE(snapshots.Contains("broken"));
  EXPECT_EQ(registry
                .Open("broken", BenchmarkDatasetSpec(1))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(registry.Close("broken"));
  EXPECT_FALSE(snapshots.Contains("broken"));
  EXPECT_TRUE(registry.Open("broken", BenchmarkDatasetSpec(1)).ok());
}

// Race check (ThreadSanitizer in CI): spill-tier demotions and
// re-admissions racing in-flight Ingest/ReconstructAll through held
// shared_ptrs must be safe — the spill serializes a point-in-time state
// under the session lock while the worker keeps mutating.
TEST(SpillRegistryTest, SpillTrafficRacingIngestIsSafe) {
  TempDir dir;
  SnapshotStore snapshots = SnapshotStore::Open(dir.path).value();
  SessionSpillStore spill(snapshots);
  engine::ThreadPool pool(2);

  api::SessionRegistryOptions options;
  options.max_bytes = 1;  // every touch demotes the other tenant
  options.spill = &spill;
  api::SessionRegistry registry(options, &pool);
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2, 8);
  ASSERT_TRUE(registry.Open("x", spec).ok());
  ASSERT_TRUE(registry.Open("y", spec).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  const std::size_t cols = spec.schema.NumFields();
  std::thread worker([&] {
    std::vector<double> rows(8 * cols, 42000.0);
    int flip = 0;
    while (!stop.load()) {
      std::shared_ptr<api::DatasetSession> session =
          registry.Lookup(++flip % 2 == 0 ? "x" : "y");
      if (session == nullptr) continue;
      if (!session->Ingest(data::RowBatch(rows.data(), 8, cols)).ok() ||
          !session->ReconstructAll().ok()) {
        ++failures;
        return;
      }
    }
  });
  for (int i = 0; i < 50; ++i) {
    (void)registry.Lookup(i % 2 == 0 ? "y" : "x");
    registry.SweepExpired();
  }
  stop.store(true);
  worker.join();
  EXPECT_EQ(failures.load(), 0);
  const api::SessionRegistry::Stats stats = registry.GetStats();
  EXPECT_GT(stats.spills, 0u);
  EXPECT_GT(stats.readmissions, 0u);
  EXPECT_EQ(stats.spill_failures, 0u);
}

// ------------------------------------------------- store under injection
//
// Deterministic fault points (common/fault.h) aimed at the persistence
// seams. The broader chaos matrix lives in fault_test.cc; these pin the
// store-local contracts: a torn write never replaces the previous
// snapshot, and a demotion that dies mid-eviction leaves the budget
// ledger exact.

TEST(SnapshotStoreTest, TornWriteNeverReplacesThePublishedSnapshot) {
  fault::DisarmAll();
  TempDir dir;
  const SnapshotStore store = SnapshotStore::Open(dir.path).value();
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1, 8);
  auto session = api::DatasetSession::Open(spec);
  ASSERT_TRUE(session.ok());
  const std::string v1 = EncodeDatasetSession(*session.value());
  ASSERT_TRUE(store.Put("victim", v1).ok());

  // The overwrite dies between write(2) and the rename publication —
  // the torn-write window. Nothing may reach the published name.
  ASSERT_TRUE(
      fault::ArmFromSpec("store.put.sync=prob:1,permanent").ok());
  EXPECT_FALSE(store.Put("victim", v1 + "tail that must never land").ok());
  fault::DisarmAll();

  const Result<std::string> survived = store.Get("victim");
  ASSERT_TRUE(survived.ok());
  EXPECT_EQ(survived.value(), v1);  // byte-identical, not merely decodable
  EXPECT_TRUE(DecodeDatasetSession(survived.value()).ok());
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST(SpillRegistryTest, DemotionFailureMidEvictionKeepsTheLedgerExact) {
  fault::DisarmAll();
  TempDir dir;
  SnapshotStore snapshots = SnapshotStore::Open(dir.path).value();
  SessionSpillStore spill(snapshots);

  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2);
  const std::size_t per_session =
      api::DatasetSession::Open(spec).value()->ApproxMemoryBytes();
  api::SessionRegistryOptions options;
  options.max_bytes = per_session + per_session / 2;  // room for one
  options.spill = &spill;
  options.spill_retry_backoff = std::chrono::milliseconds(0);
  api::SessionRegistry registry(options);

  auto a = registry.Open("a", spec);
  ASSERT_TRUE(a.ok());
  const std::vector<double> row = SmallBatch(spec, 30000.0);
  ASSERT_TRUE(a.value()
                  ->Ingest(data::RowBatch(row.data(), 1,
                                          spec.schema.NumFields()))
                  .ok());
  a.value().reset();

  // Opening "b" tries to evict "a"; the demotion dies. The registry must
  // keep "a" whole — resident and over budget — not drop it on the floor.
  ASSERT_TRUE(fault::ArmFromSpec("spill.demote=once").ok());
  ASSERT_TRUE(registry.Open("b", spec).ok());
  {
    const api::SessionRegistry::Stats stats = registry.GetStats();
    EXPECT_EQ(stats.open_sessions, 2u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.spills, 0u);
    EXPECT_EQ(stats.spill_failures, 1u);
    EXPECT_EQ(stats.degraded_sessions, 1u);
    EXPECT_GT(stats.approx_bytes, options.max_bytes);  // honest ledger
    EXPECT_EQ(stats.spilled_sessions, 0u);
    EXPECT_EQ(stats.spilled_bytes, 0u);  // no phantom capture accounted
  }
  EXPECT_TRUE(snapshots.List().value().empty());  // and none on disk

  // The `once` trigger disarmed itself; the next touch retries the
  // demotion and every ledger column lands exactly.
  ASSERT_NE(registry.Lookup("b"), nullptr);
  {
    const api::SessionRegistry::Stats stats = registry.GetStats();
    EXPECT_EQ(stats.open_sessions, 1u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.spills, 1u);
    EXPECT_EQ(stats.spilled_sessions, 1u);
    EXPECT_GT(stats.spilled_bytes, 0u);
    EXPECT_EQ(stats.degraded_sessions, 0u);
    EXPECT_LE(stats.approx_bytes, options.max_bytes);
  }

  // The evidence ingested before the failed attempt survived the detour.
  const std::shared_ptr<api::DatasetSession> readmitted =
      registry.Lookup("a");
  ASSERT_NE(readmitted, nullptr);
  EXPECT_EQ(readmitted->record_count(), 1u);
  fault::DisarmAll();
}

}  // namespace
}  // namespace ppdm::store
