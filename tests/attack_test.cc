// Tests for the Bayesian interval-inference attack: the adversarial check
// that the paper's §3 privacy accounting is honest.

#include <vector>

#include <gtest/gtest.h>

#include "attack/interval_attack.h"
#include "stats/distribution.h"
#include "stats/histogram.h"

namespace ppdm::attack {
namespace {

using perturb::NoiseKind;
using perturb::NoiseModel;
using reconstruct::Partition;

struct AttackData {
  std::vector<double> original;
  std::vector<double> perturbed;
  std::vector<double> prior;
};

AttackData MakeData(const NoiseModel& noise, std::size_t n = 6000,
                    std::size_t bins = 20) {
  Rng rng(5);
  const stats::PlateauDistribution truth(0.0, 1.0, 0.25);
  AttackData data;
  stats::Histogram hist(0.0, 1.0, bins);
  data.original.resize(n);
  data.perturbed.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.original[i] = truth.Sample(&rng);
    data.perturbed[i] = data.original[i] + noise.Sample(&rng);
    hist.Add(data.original[i]);
  }
  data.prior = hist.Masses();
  return data;
}

TEST(IntervalAttackTest, NearZeroNoiseIsFullyCompromised) {
  const NoiseModel noise = NoiseModel::Uniform(0.005);  // << interval width
  const AttackData data = MakeData(noise);
  const auto result = RunIntervalAttack(data.original, data.perturbed,
                                        Partition(0.0, 1.0, 20), noise,
                                        data.prior);
  EXPECT_GE(result.map_hit_rate, 0.85);
  EXPECT_LE(result.mean_credible_width95, 0.12);
}

TEST(IntervalAttackTest, FullPrivacyDefeatsTheAttack) {
  const NoiseModel noise =
      perturb::NoiseForPrivacy(NoiseKind::kUniform, 1.0, 1.0, 0.95);
  const AttackData data = MakeData(noise);
  const auto result = RunIntervalAttack(data.original, data.perturbed,
                                        Partition(0.0, 1.0, 20), noise,
                                        data.prior);
  // MAP can't do much better than guessing a modal interval.
  EXPECT_LE(result.map_hit_rate, 0.2);
  // And the attacker's own 95% interval is wide — consistent with the
  // claimed privacy (100% of range at 95% confidence, clipped by domain).
  EXPECT_GE(result.mean_credible_width95, 0.5);
}

TEST(IntervalAttackTest, CredibleSetsAreCalibrated) {
  for (double privacy : {0.25, 1.0}) {
    const NoiseModel noise =
        perturb::NoiseForPrivacy(NoiseKind::kGaussian, privacy, 1.0, 0.95);
    const AttackData data = MakeData(noise);
    const auto result = RunIntervalAttack(data.original, data.perturbed,
                                          Partition(0.0, 1.0, 20), noise,
                                          data.prior);
    EXPECT_GE(result.credible_coverage, 0.9) << "privacy " << privacy;
  }
}

TEST(IntervalAttackTest, HitRateDecreasesWithPrivacy) {
  double previous = 1.1;
  for (double privacy : {0.1, 0.25, 0.5, 1.0}) {
    const NoiseModel noise =
        perturb::NoiseForPrivacy(NoiseKind::kUniform, privacy, 1.0, 0.95);
    const AttackData data = MakeData(noise);
    const auto result = RunIntervalAttack(data.original, data.perturbed,
                                          Partition(0.0, 1.0, 20), noise,
                                          data.prior);
    EXPECT_LT(result.map_hit_rate, previous + 0.02)
        << "privacy " << privacy;
    previous = result.map_hit_rate;
  }
}

TEST(IntervalAttackTest, EmptyInput) {
  const NoiseModel noise = NoiseModel::Uniform(0.1);
  const auto result = RunIntervalAttack({}, {}, Partition(0.0, 1.0, 10),
                                        noise, std::vector<double>(10, 0.1));
  EXPECT_EQ(result.records, 0u);
  EXPECT_DOUBLE_EQ(result.map_hit_rate, 0.0);
}

TEST(IntervalAttackTest, PriorBaselineIsReported) {
  const NoiseModel noise =
      perturb::NoiseForPrivacy(NoiseKind::kUniform, 2.0, 1.0, 0.95);
  const AttackData data = MakeData(noise);
  const auto result = RunIntervalAttack(data.original, data.perturbed,
                                        Partition(0.0, 1.0, 20), noise,
                                        data.prior);
  // Plateau ground truth: modal interval holds ~1/17 of the mass.
  EXPECT_GT(result.prior_hit_rate, 0.02);
  EXPECT_LT(result.prior_hit_rate, 0.15);
}

}  // namespace
}  // namespace ppdm::attack
